// The software TLB the VMMC LCP keeps in LANai SRAM for each process
// (§4.5): virtual-to-physical, two-way set associative, large enough for
// 8 MB of address space at 4 KB pages (2048 entries). On a miss the LANai
// interrupts the host and the driver inserts up to 32 translations.
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/mem/types.h"
#include "vmmc/obs/metrics.h"

namespace vmmc::vmmc_core {

class SwTlb {
 public:
  // `total_entries` must be a multiple of `ways`.
  SwTlb(std::uint32_t total_entries, std::uint32_t ways);

  // Points hit/miss/eviction accounting at registry counters (typically
  // node<N>.tlb.{hit,miss,eviction}, shared by every process on the NIC).
  // Unbound TLBs count into internal sinks, so the hot path never
  // branches on whether metrics are wired.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(sets_.size());
  }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t num_sets() const { return static_cast<std::uint32_t>(sets_.size() / ways_); }

  // Returns true and fills *pfn on a hit (updates LRU).
  bool Lookup(mem::Vpn vpn, mem::Pfn* pfn);

  // Inserts (replacing the LRU way of the set if full).
  void Insert(mem::Vpn vpn, mem::Pfn pfn);

  // Drops one translation / everything (unpin / process teardown).
  void Invalidate(mem::Vpn vpn);
  void InvalidateAll();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint32_t valid_entries() const;

 private:
  struct Way {
    bool valid = false;
    mem::Vpn vpn = 0;
    mem::Pfn pfn = 0;
    std::uint64_t last_used = 0;
  };

  std::size_t SetBase(mem::Vpn vpn) const {
    return static_cast<std::size_t>(vpn % num_sets()) * ways_;
  }

  std::uint32_t ways_;
  std::vector<Way> sets_;  // num_sets * ways, flattened
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hits_m_;
  obs::Counter* misses_m_;
  obs::Counter* evictions_m_;
};

}  // namespace vmmc::vmmc_core
