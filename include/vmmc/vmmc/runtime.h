// Env-driven front-end for standing up a cluster on either execution
// substrate (see cluster.h):
//
//   VMMC_THREADS unset, empty, or <= 1  ->  one Simulator, the historical
//       single event queue. Bit-identical to every prior release.
//   VMMC_THREADS=N (N >= 2)             ->  a ParallelEngine with N worker
//       threads driving the partitioned cluster (one logical process per
//       node, per switch, and for the Ethernet segment).
//
// The partition is a pure function of the topology — VMMC_THREADS only
// picks how many OS threads execute it — so any N >= 2 produces the
// identical event schedule and results. N may exceed the core count;
// excess workers just contend. Benches and tests that want explicit
// control pass RuntimeOptions::threads instead of using the environment.
#pragma once

#include <cstddef>
#include <memory>

#include "vmmc/params.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/parallel.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::vmmc_core {

struct RuntimeOptions {
  // Worker threads: 1 = single simulator; >= 2 = partitioned cluster with
  // that many workers; 0 (default) = read VMMC_THREADS.
  int threads = 0;
  // Capacity of each cross-shard event channel (events per directed shard
  // pair per synchronization window). Overflow aborts loudly.
  std::size_t channel_capacity = 1024;
};

// Owns the substrate (Simulator or ParallelEngine) and the Cluster built
// on it. Drive the cluster through its substrate-neutral methods
// (DriveUntil / DriveUntilQuiescent / time_now / MergeMetricsInto) and
// spawn per-node workloads on cluster().node_sim(i).
class ClusterRuntime {
 public:
  // Parses VMMC_THREADS; unset / unparsable / < 2 yields 1.
  static int EnvThreads();

  ClusterRuntime(const Params& params, ClusterOptions options,
                 RuntimeOptions rt = {});

  Cluster& cluster() { return *cluster_; }
  Cluster* operator->() { return cluster_.get(); }
  bool parallel() const { return engine_ != nullptr; }
  int threads() const { return threads_; }
  sim::ParallelEngine* engine() { return engine_.get(); }

  // Installs `plan` on every shard's injector (serial: the one simulator).
  // Each shard draws from its own stream seeded by plan.seed, so fault
  // placement is deterministic for a given topology but differs from the
  // single-simulator schedule.
  void ConfigureFaults(const sim::FaultPlan& plan);

 private:
  std::unique_ptr<sim::Simulator> sim_;          // threads == 1
  std::unique_ptr<sim::ParallelEngine> engine_;  // threads >= 2
  std::unique_ptr<Cluster> cluster_;
  int threads_ = 1;
};

}  // namespace vmmc::vmmc_core
