// The VMMC loadable device driver (§5.1): the only kernel-level code in
// the system. Two services, both driven by the NIC interrupt:
//  * software-TLB miss handling — translate virtual to physical for pinned
//    pages, locking send pages in memory and inserting up to 32
//    translations per interrupt (§4.5);
//  * notification delivery — forwarding LCP notifications to user
//    processes via signals (§5.1).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "vmmc/host/kernel.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/params.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// What the user library's signal handler reads from the driver.
struct UserNotification {
  std::uint32_t export_id = 0;
  std::uint32_t msg_len = 0;
};

class VmmcDriver {
 public:
  VmmcDriver(const Params& params, host::Kernel& kernel, lanai::NicCard& nic,
             VmmcLcp& lcp)
      : params_(params), kernel_(kernel), nic_(nic), lcp_(lcp) {}
  VmmcDriver(const VmmcDriver&) = delete;
  VmmcDriver& operator=(const VmmcDriver&) = delete;

  // Installs the interrupt handler (module load time).
  void Install() {
    kernel_.RegisterIrqHandler(lanai::NicCard::kIrq,
                               [this] { return HandleInterrupt(); });
  }

  // Library side: drain notifications destined for `pid` (called from the
  // signal handler).
  std::vector<UserNotification> DrainNotifications(int pid);

  std::uint64_t tlb_fills() const { return tlb_fills_; }
  std::uint64_t pages_pinned() const { return pages_pinned_; }
  std::uint64_t notifications_delivered() const { return notifications_delivered_; }

 private:
  sim::Process HandleInterrupt();
  // Lazy: the node id is only known once the NIC is attached, which can be
  // after driver Install in the boot sequence.
  void EnsureObs();

  const Params& params_;
  host::Kernel& kernel_;
  lanai::NicCard& nic_;
  VmmcLcp& lcp_;

  std::unordered_map<int, std::deque<UserNotification>> pending_;
  std::uint64_t tlb_fills_ = 0;
  std::uint64_t pages_pinned_ = 0;
  std::uint64_t notifications_delivered_ = 0;

  obs::Counter* tlb_fills_m_ = nullptr;
  obs::Counter* pages_pinned_m_ = nullptr;
  obs::Counter* notifications_m_ = nullptr;
  int track_ = -1;  // "node<N>.driver" span track
};

}  // namespace vmmc::vmmc_core
