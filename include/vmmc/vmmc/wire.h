// On-the-wire format of VMMC packets.
//
// A long message is sent in chunks; "each chunk consists of routing
// information, a header, and data. The routing information is in standard
// Myrinet format. The header includes the message length and two physical
// destination addresses" (§4.5) — two so the receiving LANai can scatter a
// chunk that spans a page boundary in destination memory; when no boundary
// is crossed the second address is zero. The receiver computes the scatter
// lengths from the addresses and the chunk length.
//
// The same framing carries the mapping-phase probe/reply packets (§4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "vmmc/mem/types.h"
#include "vmmc/util/buffer.h"

namespace vmmc::vmmc_core {

enum class PacketType : std::uint8_t {
  kData = 1,       // VMMC chunk
  kMapProbe = 2,   // network-mapping probe
  kMapReply = 3,   // network-mapping reply
  kAck = 4,        // cumulative acknowledgment (reliability layer)
  kRdmaRead = 5,   // one-sided read request; remote LCP serves data chunks
};

struct ChunkHeader {
  static constexpr std::size_t kWireSize = 40;

  PacketType type = PacketType::kData;
  std::uint8_t flags = 0;
  static constexpr std::uint8_t kFlagLastChunk = 0x01;
  static constexpr std::uint8_t kFlagNotify = 0x02;
  // Set on chunks carried by the go-back-N layer: seq/dst_node are live
  // and the receiver runs duplicate/ordering checks and sends ACKs. Off
  // for mapping traffic and the compat layers, which keep their own
  // delivery semantics over the same framing.
  static constexpr std::uint8_t kFlagReliable = 0x04;
  // Receiver-side addressing (rkey model): dst_pa0 carries
  // (rtag << 32) | byte_offset instead of a physical address, and the
  // receiving LCP resolves it against its registered-region table. This
  // is what lets a sender target memory it never exchanged frame lists
  // for — the registration travels as one 32-bit tag. dst_pa1 is unused
  // (the receiver computes its own page-crossing scatter split).
  static constexpr std::uint8_t kFlagRtag = 0x08;

  std::uint16_t src_node = 0;
  std::uint32_t msg_len = 0;    // total message length in bytes
  std::uint32_t chunk_len = 0;  // bytes of data in this chunk
  std::uint64_t dst_pa0 = 0;    // first scatter target
  std::uint64_t dst_pa1 = 0;    // second scatter target (0: none)
  std::uint32_t tag = 0;        // sender-side bookkeeping (mapping: probe id)

  // Reliability layer (kFlagReliable / kAck only). For data: the per-
  // {src_node -> dst_node} go-back-N sequence number. For an ACK: the
  // cumulative acknowledgment — the next sequence number the acking node
  // (src_node) expects from dst_node.
  std::uint32_t seq = 0;
  std::uint16_t dst_node = 0;

  bool last_chunk() const { return flags & kFlagLastChunk; }
  bool notify() const { return flags & kFlagNotify; }
  bool reliable() const { return flags & kFlagReliable; }
  bool rtag_addressed() const { return flags & kFlagRtag; }

  // Accessors for the kFlagRtag encoding of dst_pa0 (and, for kRdmaRead
  // requests, the source encoding in dst_pa1).
  static std::uint64_t PackRtag(std::uint32_t rtag, std::uint64_t offset) {
    return (std::uint64_t{rtag} << 32) | (offset & 0xffff'ffffull);
  }
  static std::uint32_t RtagOf(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed >> 32);
  }
  static std::uint64_t RtagOffsetOf(std::uint64_t packed) {
    return packed & 0xffff'ffffull;
  }

  // Scatter split: how many of chunk_len bytes go to dst_pa0. The first
  // segment runs to the end of dst_pa0's page if a second address is set.
  std::uint32_t ScatterLen0() const {
    if (dst_pa1 == 0) return chunk_len;
    const std::uint64_t to_page_end = mem::kPageSize - mem::PageOffset(dst_pa0);
    return static_cast<std::uint32_t>(
        to_page_end < chunk_len ? to_page_end : chunk_len);
  }
};

// Writes the kWireSize-byte header (little endian) at `dst`, which must
// have room for it. Zero-copy senders encode straight into a payload
// buffer whose data bytes were DMA'd in place (no intermediate vector).
void EncodeHeaderInto(const ChunkHeader& header, std::uint8_t* dst);

// Serializes header + data into a packet payload (little endian).
util::Buffer EncodeChunk(const ChunkHeader& header,
                         std::span<const std::uint8_t> data);

// Parses a payload; returns nullopt on malformed input (short payload or
// length mismatch). `data` views into `payload`, which must outlive it.
struct DecodedChunk {
  ChunkHeader header;
  std::span<const std::uint8_t> data;
};
std::optional<DecodedChunk> DecodeChunk(std::span<const std::uint8_t> payload);

}  // namespace vmmc::vmmc_core
