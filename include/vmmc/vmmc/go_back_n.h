// Go-back-N sequencing state machines for the LCP reliability layer.
//
// Pure protocol logic, no simulator or hardware dependencies: the LCP
// embeds one GbnSender per destination node and one GbnReceiver per source
// node (src/vmmc/lcp.cpp), and tests/property_test.cpp drives the same
// classes against a reference in-order channel under random loss.
//
// Sequence numbers are 32-bit and compared with serial arithmetic, so the
// space wraps safely as long as fewer than 2^31 packets are in flight —
// the window is tiny (tens), so this always holds.
#pragma once

#include <cstdint>

namespace vmmc::vmmc_core {

// a < b in sequence space.
inline bool SeqBefore(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

// Sender side for one destination: window accounting over a cumulative-ACK
// channel. The caller owns the retransmit buffer; this class only tracks
// [base, next) and how ACKs move base.
class GbnSender {
 public:
  explicit GbnSender(std::uint32_t window) : window_(window) {}

  std::uint32_t window() const { return window_; }
  std::uint32_t base() const { return base_; }       // oldest unacked seq
  std::uint32_t next_seq() const { return next_; }   // next seq to assign
  std::uint32_t in_flight() const { return next_ - base_; }
  bool has_unacked() const { return next_ != base_; }
  bool can_send() const { return in_flight() < window_; }

  // Assigns the sequence number for a new packet. Caller must have checked
  // can_send().
  std::uint32_t OnSend() { return next_++; }

  // Cumulative ACK carrying the receiver's next expected seq. Returns how
  // many packets it newly acknowledges (0 for duplicates / stale ACKs);
  // the caller releases that many retransmit-buffer slots from the front.
  std::uint32_t OnAck(std::uint32_t ack) {
    if (!SeqBefore(base_, ack) || SeqBefore(next_, ack)) return 0;
    const std::uint32_t newly = ack - base_;
    base_ = ack;
    return newly;
  }

 private:
  std::uint32_t window_;
  std::uint32_t base_ = 0;
  std::uint32_t next_ = 0;
};

// Receiver side for one source: in-order filter and cumulative-ACK value.
// Go-back-N keeps no reassembly buffer — anything but the next expected
// sequence number is discarded and the sender retransmits from its base.
class GbnReceiver {
 public:
  enum class Verdict {
    kAccept,      // the expected packet: deliver, expected advances
    kDuplicate,   // already delivered (retransmitted after a lost ACK)
    kOutOfOrder,  // a gap upstream: discard, wait for the retransmission
  };

  std::uint32_t expected() const { return expected_; }
  // The cumulative ACK to advertise: next expected seq.
  std::uint32_t CumAck() const { return expected_; }

  Verdict OnData(std::uint32_t seq) {
    if (seq == expected_) {
      ++expected_;
      return Verdict::kAccept;
    }
    return SeqBefore(seq, expected_) ? Verdict::kDuplicate
                                     : Verdict::kOutOfOrder;
  }

 private:
  std::uint32_t expected_ = 0;
};

}  // namespace vmmc::vmmc_core
