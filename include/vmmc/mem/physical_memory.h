// Simulated physical memory of one node: a frame allocator plus lazily
// backed byte storage. The allocator hands frames out in a deterministic
// scattered order, reproducing the fact (central to the paper's bandwidth
// analysis, section 5.2) that consecutive virtual pages are usually not
// physically contiguous, which caps DMA transfer units at one page.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vmmc/mem/types.h"
#include "vmmc/util/status.h"

namespace vmmc::mem {

class PhysicalMemory {
 public:
  // `bytes` must be page aligned. `scatter_seed` != 0 shuffles the frame
  // free list deterministically; 0 keeps it sequential.
  explicit PhysicalMemory(std::uint64_t bytes, std::uint64_t scatter_seed = 1);

  std::uint64_t size_bytes() const { return num_frames_ * kPageSize; }
  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t free_frames() const { return free_list_.size(); }

  Result<Pfn> AllocFrame();
  Status FreeFrame(Pfn pfn);
  bool IsAllocated(Pfn pfn) const { return allocated_.contains(pfn); }

  // Byte access; may cross frame boundaries. Reads of never-written memory
  // return zeros. Out-of-range access is a checked failure.
  Status Read(PhysAddr addr, std::span<std::uint8_t> out) const;
  Status Write(PhysAddr addr, std::span<const std::uint8_t> in);

 private:
  using Frame = std::array<std::uint8_t, kPageSize>;

  Frame* BackingFor(Pfn pfn) const;  // nullptr if untouched
  Frame& EnsureBacking(Pfn pfn);

  std::uint64_t num_frames_;
  std::vector<Pfn> free_list_;  // popped from the back
  std::unordered_set<Pfn> allocated_;
  mutable std::unordered_map<Pfn, std::unique_ptr<Frame>> backing_;
};

}  // namespace vmmc::mem
