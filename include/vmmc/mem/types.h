// Address types shared by the memory, host, NIC and VMMC layers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vmmc::mem {

// 4 KB pages, as on the paper's Pentium/Linux 2.0 platform.
constexpr std::size_t kPageShift = 12;
constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;
constexpr std::uint64_t kPageMask = kPageSize - 1;

using PhysAddr = std::uint64_t;  // physical byte address
using VirtAddr = std::uint64_t;  // virtual byte address
using Pfn = std::uint64_t;       // physical frame number
using Vpn = std::uint64_t;       // virtual page number

constexpr std::uint64_t PageNumber(std::uint64_t addr) { return addr >> kPageShift; }
constexpr std::uint64_t PageOffset(std::uint64_t addr) { return addr & kPageMask; }
constexpr std::uint64_t PageBase(std::uint64_t addr) { return addr & ~kPageMask; }
constexpr std::uint64_t PageAddr(std::uint64_t page_number) {
  return page_number << kPageShift;
}
// Number of pages spanned by [addr, addr+len).
constexpr std::uint64_t PagesSpanned(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return 0;
  return PageNumber(addr + len - 1) - PageNumber(addr) + 1;
}
constexpr std::uint64_t RoundUpToPage(std::uint64_t len) {
  return (len + kPageMask) & ~kPageMask;
}

}  // namespace vmmc::mem
