// Per-process virtual address space: page table, byte access that walks the
// page table, page pinning (for DMA), and a small user heap so examples and
// benchmarks can allocate buffers the way a user program would.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "vmmc/mem/physical_memory.h"
#include "vmmc/mem/types.h"
#include "vmmc/util/status.h"

namespace vmmc::mem {

struct PageTableEntry {
  Pfn pfn = 0;
  bool writable = true;
  std::uint32_t pin_count = 0;  // >0: page may be a DMA source/target
};

// Virtual-to-physical mapping for one process.
class PageTable {
 public:
  bool Contains(Vpn vpn) const { return entries_.contains(vpn); }
  const PageTableEntry* Find(Vpn vpn) const;
  PageTableEntry* Find(Vpn vpn);
  Status Insert(Vpn vpn, PageTableEntry entry);
  Status Erase(Vpn vpn);
  std::size_t size() const { return entries_.size(); }

  template <typename Fn>  // Fn(Vpn, const PageTableEntry&)
  void ForEach(Fn&& fn) const {
    // Visit in VPN order: hash order must not leak to callers (the
    // destructor frees frames through this, and frame-free order feeds
    // the physical allocator's reuse order).
    std::vector<Vpn> vpns;
    vpns.reserve(entries_.size());
    // vmmc-lint: allow(unordered-iter): vpns are sorted below before visiting
    for (const auto& [vpn, entry] : entries_) vpns.push_back(vpn);
    std::sort(vpns.begin(), vpns.end());
    for (Vpn vpn : vpns) fn(vpn, entries_.at(vpn));
  }
  void Clear() { entries_.clear(); }

 private:
  std::unordered_map<Vpn, PageTableEntry> entries_;
};

class AddressSpace {
 public:
  explicit AddressSpace(PhysicalMemory& pm);
  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  PhysicalMemory& physical_memory() { return pm_; }
  const PageTable& page_table() const { return pt_; }

  // Maps `len` bytes (rounded up to pages) of fresh zeroed memory and
  // returns the base virtual address. Frames come from the scattered
  // allocator, so they are generally not physically contiguous.
  Result<VirtAddr> MapAnonymous(std::uint64_t len, bool writable = true);
  // Unmaps previously mapped pages and frees their frames.
  //
  // Pinned-page semantics, precisely: release listeners (below) fire
  // first, giving caches a chance to drop *idle* pins they hold over the
  // range. After that, if any page in the range is still pinned — an
  // export, an in-flight DMA, or an actively referenced registration —
  // Unmap returns FailedPrecondition and unmaps nothing (the operation
  // is atomic: either every page goes or none does).
  Status Unmap(VirtAddr va, std::uint64_t len);

  // Release listeners: invoked synchronously (no sim-time cost) with the
  // affected [va, va+len) range at the start of Unmap and HeapFree,
  // before any validation. The VMMC registration cache subscribes to
  // invalidate cached pin-downs: entries with no active references are
  // unpinned on the spot so the unmap can proceed; entries still in use
  // keep their pins and Unmap fails as described above. HeapFree never
  // unmaps (heap pages stay resident), but listeners must still treat
  // the range as dead — the block can be handed out again by the next
  // HeapAlloc.
  using ReleaseListener = std::function<void(VirtAddr va, std::uint64_t len)>;
  void AddReleaseListener(ReleaseListener fn);

  // Page-table walk for one address.
  Result<PhysAddr> Translate(VirtAddr va) const;
  // Translation that requires the page to be pinned (used by DMA paths).
  Result<PhysAddr> TranslatePinned(VirtAddr va) const;

  // Byte access through the page table; may cross page boundaries.
  Status Read(VirtAddr va, std::span<std::uint8_t> out) const;
  Status Write(VirtAddr va, std::span<const std::uint8_t> in);

  // Typed helpers for word-sized accesses (completion words, flags).
  Result<std::uint32_t> ReadU32(VirtAddr va) const;
  Status WriteU32(VirtAddr va, std::uint32_t value);

  // Pin/unpin every page overlapping [va, va+len). Pins nest.
  Status Pin(VirtAddr va, std::uint64_t len);
  Status Unpin(VirtAddr va, std::uint64_t len);

  // User heap: first-fit allocator over an arena that grows page-wise.
  Result<VirtAddr> HeapAlloc(std::uint64_t len, std::uint64_t align = 16);
  Status HeapFree(VirtAddr va);

 private:
  void NotifyRelease(VirtAddr va, std::uint64_t len);

  PhysicalMemory& pm_;
  PageTable pt_;
  std::vector<ReleaseListener> release_listeners_;
  VirtAddr next_map_ = 0x1000'0000;  // mmap region cursor

  // Heap bookkeeping: free blocks keyed by address, plus allocation sizes.
  static constexpr VirtAddr kHeapBase = 0x0800'0000;
  VirtAddr heap_end_ = kHeapBase;  // first unmapped heap address
  std::map<VirtAddr, std::uint64_t> heap_free_;
  std::unordered_map<VirtAddr, std::uint64_t> heap_allocs_;
};

}  // namespace vmmc::mem
