// Simulated time. One Tick is one nanosecond; all hardware cost models in
// the repository quote times in these units. Rates are expressed in MB/s
// (decimal megabytes, as in the paper) and converted with NsForBytes.
#pragma once

#include <cassert>
#include <cstdint>

namespace vmmc::sim {

using Tick = std::int64_t;  // nanoseconds

constexpr Tick kNanosecond = 1;
constexpr Tick kMicrosecond = 1000;
constexpr Tick kMillisecond = 1000 * 1000;
constexpr Tick kSecond = 1000 * 1000 * 1000;

constexpr Tick Nanoseconds(std::int64_t n) { return n; }
constexpr Tick Microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Tick Milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Tick Seconds(std::int64_t n) { return n * kSecond; }

constexpr double ToMicroseconds(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

// Serialization time of `bytes` at `mb_per_s` decimal megabytes/second,
// rounded up so a transfer never finishes early.
constexpr Tick NsForBytes(std::uint64_t bytes, double mb_per_s) {
  // 1 MB/s == 1 byte/us == 1e-3 bytes/ns.
  const double ns = static_cast<double>(bytes) / (mb_per_s * 1e-3);
  return static_cast<Tick>(ns + 0.999999);
}

// Throughput in MB/s given bytes moved over an interval.
constexpr double MBPerSec(std::uint64_t bytes, Tick elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 1e3 / static_cast<double>(elapsed);
}

namespace literals {
constexpr Tick operator""_ns(unsigned long long n) { return static_cast<Tick>(n); }
constexpr Tick operator""_us(unsigned long long n) { return static_cast<Tick>(n) * kMicrosecond; }
constexpr Tick operator""_ms(unsigned long long n) { return static_cast<Tick>(n) * kMillisecond; }
constexpr Tick operator""_s(unsigned long long n) { return static_cast<Tick>(n) * kSecond; }
}  // namespace literals

}  // namespace vmmc::sim
