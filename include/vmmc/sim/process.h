// Process: the coroutine type used for every simulated activity (LANai
// control programs, DMA engines, user programs, daemons...).
//
// Semantics:
//  * A Process is lazy: it does not run until either awaited
//    (`co_await child()`) or handed to Simulator::Spawn.
//  * `co_await process` starts the child immediately (symmetric transfer)
//    and resumes the parent when the child finishes, at the child's
//    finishing time. At most one coroutine may await a given Process.
//  * Spawned (detached) processes self-destroy at completion; an exception
//    escaping a detached process terminates the program.
//  * Destroying a Process object whose coroutine has started but not
//    finished detaches it (the frame runs to completion and then frees
//    itself); a never-started frame is destroyed in place. This avoids
//    dangling wake-ups from awaitables already queued in the simulator.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace vmmc::sim {

class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    bool started = false;
    bool finished = false;
    bool detached = false;
    std::coroutine_handle<> joiner;
    std::exception_ptr error;

    Process get_return_object() {
      return Process(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        p.finished = true;
        std::coroutine_handle<> next =
            p.joiner ? p.joiner : std::coroutine_handle<>(std::noop_coroutine());
        if (p.detached) {
          if (p.error) std::terminate();  // detached coroutine threw
          h.destroy();
        }
        return next;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Process() = default;
  explicit Process(Handle h) : h_(h) {}
  Process(Process&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      Release();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { Release(); }

  bool valid() const { return h_ != nullptr; }
  bool started() const { return h_ && h_.promise().started; }
  bool finished() const { return h_ && h_.promise().finished; }

  // Awaiting starts the child (if needed) and suspends until it completes.
  auto operator co_await() {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept {
        return !h || h.promise().finished;
      }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        promise_type& p = h.promise();
        assert(!p.joiner && "a Process may be awaited by one coroutine only");
        p.joiner = cont;
        if (!p.started) {
          p.started = true;
          return h;  // symmetric transfer: run the child now
        }
        return std::noop_coroutine();
      }
      void await_resume() {
        if (h && h.promise().error) {
          // Consume the error so the Process destructor treats it as
          // observed rather than terminating.
          std::exception_ptr e = std::exchange(h.promise().error, nullptr);
          std::rethrow_exception(e);
        }
      }
    };
    return Awaiter{h_};
  }

  // Used by Simulator::Spawn: transfers frame ownership to the frame itself.
  Handle Detach() {
    assert(h_);
    h_.promise().detached = true;
    return std::exchange(h_, nullptr);
  }

 private:
  void Release() {
    if (!h_) return;
    promise_type& p = h_.promise();
    if (p.finished) {
      if (p.error) std::terminate();  // error was never observed
      h_.destroy();
    } else if (!p.started) {
      h_.destroy();  // never ran: no queued wake-ups can exist
    } else {
      p.detached = true;  // runs to completion, then frees itself
    }
    h_ = nullptr;
  }

  Handle h_;
};

}  // namespace vmmc::sim
