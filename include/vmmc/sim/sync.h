// Synchronization primitives for simulation coroutines. All wake-ups are
// routed through the Simulator event queue at the current time, preserving
// deterministic FIFO ordering and bounding recursion depth.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "vmmc/sim/simulator.h"

namespace vmmc::sim {

// One-shot (but resettable) broadcast event. Waiters suspend until Set().
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.Resume(h);
    waiters_.clear();
  }

  void Reset() { set_ = false; }

  auto Wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO waiters. Semaphore(sim, 1) is a mutex and
// models exclusive resources such as a bus.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial)
      : sim_(sim), count_(initial) {
    assert(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

  auto Acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  // Non-blocking acquire: takes a permit if one is free and nobody is
  // queued ahead; never suspends.
  bool TryAcquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the oldest waiter.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.Resume(h);
    } else {
      ++count_;
    }
  }

 private:
  Simulator& sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII permit: `auto lock = co_await ScopedAcquire(sem);`
class [[nodiscard]] SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* sem) : sem_(sem) {}
  SemaphoreGuard(SemaphoreGuard&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  SemaphoreGuard& operator=(SemaphoreGuard&& o) noexcept {
    if (this != &o) {
      Unlock();
      sem_ = std::exchange(o.sem_, nullptr);
    }
    return *this;
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { Unlock(); }

  void Unlock() {
    if (sem_) {
      sem_->Release();
      sem_ = nullptr;
    }
  }

 private:
  Semaphore* sem_;
};

// Acquires the semaphore and returns a guard that releases it on scope exit.
inline auto ScopedAcquire(Semaphore& sem) {
  struct Awaiter {
    Semaphore& sem;
    decltype(sem.Acquire()) inner;
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    SemaphoreGuard await_resume() { return SemaphoreGuard(&sem); }
  };
  return Awaiter{sem, sem.Acquire()};
}

// Unbounded FIFO channel. Items handed to waiters never re-enter the queue,
// so a woken receiver cannot lose its item to a late arrival.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void Put(T item) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(item));
      sim_.Resume(w->handle);
      return;
    }
    items_.push_back(std::move(item));
  }

  // Awaitable receive; resolves to the next item in FIFO order.
  auto Get() {
    struct Awaiter {
      Mailbox& box;
      Waiter self{};
      bool await_ready() const noexcept {
        return !box.items_.empty() && box.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        self.handle = h;
        box.waiters_.push_back(&self);
      }
      T await_resume() {
        if (self.slot.has_value()) return std::move(*self.slot);
        assert(!box.items_.empty());
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this};
  }

  // Non-blocking receive.
  std::optional<T> TryGet() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

  Simulator& sim_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

}  // namespace vmmc::sim
