// Deterministic fault injection for the simulated platform.
//
// A FaultPlan describes what should go wrong — bit flips on fabric links
// (caught by the CRC-8 at the receiving NIC), whole-packet drops, bounded
// delivery jitter, and host-DMA engine stalls — and the FaultInjector,
// owned by the Simulator, executes it under its own seeded Rng. Fault
// decisions draw from that dedicated stream, so two runs with the same
// seed and plan are byte-identical, and enabling faults does not perturb
// any other random decision in the run.
//
// Hardware hooks query the injector at the point the fault would occur:
// Link::Send consults OnLinkTransmit for every packet put on a wire, and
// NicCard's host-DMA engines consult DmaStallDelay before each transfer.
// An unconfigured injector answers "no fault" without touching the Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/obs/metrics.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/time.h"
#include "vmmc/util/buffer.h"

namespace vmmc::sim {

// Where a packet currently is when a link-fault decision is made: the flat
// fabric link id plus the link's topological origin — (switch, port) for a
// link leaving a switch output port, or the source NIC id for the
// NIC-to-switch injection link. Filled by the Fabric when the topology is
// wired; links built outside a Fabric report all -1 and match only
// wildcard rules.
struct LinkSite {
  int link_id = -1;
  int switch_id = -1;  // origin switch, -1 for NIC-injection links
  int port = -1;       // origin output port on switch_id
  int src_nic = -1;    // origin NIC, -1 for switch-originated links
};

// One fabric-link fault rule. A rule applies to a packet when every
// non-wildcard (-1) field matches the link's LinkSite, so a link can be
// addressed by flat id, by topology position (switch, port), or by the
// injecting NIC; all-wildcard rules apply to every link. Each matching
// rule is applied in plan order, so rates compose per packet.
struct LinkFaultRule {
  int link_id = -1;           // -1: any link id
  int switch_id = -1;         // -1: any origin switch (with `port` below)
  int port = -1;              // -1: any output port of switch_id
  int src_nic = -1;           // -1: any injecting NIC
  double bitflip_rate = 0.0;  // P(flip one payload bit) per packet
  double drop_rate = 0.0;     // P(lose the packet on the wire) per packet
  double delay_rate = 0.0;    // P(extra delivery jitter) per packet
  Tick max_delay = 0;         // jitter drawn uniform in [1, max_delay] ns
};

// A host-DMA stall window on one node's NIC. The engine performs no
// transfer while stalled; transfers issued inside a window wait for it to
// close. With period > 0 the window recurs (start + k*period for all k).
struct DmaStallRule {
  int node_id = -1;  // -1: all nodes
  Tick start = 0;
  Tick duration = 0;
  Tick period = 0;  // 0: one-shot
};

struct FaultPlan {
  std::uint64_t seed = 0xFA017ull;
  std::vector<LinkFaultRule> links;
  std::vector<DmaStallRule> dma_stalls;

  bool empty() const { return links.empty() && dma_stalls.empty(); }

  // Convenience: one wildcard rule for every link.
  static FaultPlan AllLinks(LinkFaultRule rule, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    rule.link_id = -1;
    plan.links.push_back(rule);
    return plan;
  }
};

class FaultInjector {
 public:
  // What happens to one packet on one link.
  struct LinkVerdict {
    bool drop = false;
    bool corrupted = false;
    Tick extra_delay = 0;
  };

  FaultInjector(const Tick* now, obs::Registry* metrics)
      : now_(now), metrics_(metrics) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs `plan` and reseeds the fault Rng from plan.seed. Replaces any
  // previous plan; an empty plan deactivates the injector.
  void Configure(FaultPlan plan);
  void Clear() { Configure(FaultPlan{}); }

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  // Decides the fate of one packet entering the link at `site`. May flip
  // one bit in `payload` (the receiver's CRC check then fails, as on real
  // hardware). Counts into fault.injected.*.
  LinkVerdict OnLinkTransmit(const LinkSite& site, util::Buffer& payload);

  // How long node `node_id`'s host-DMA engine must wait, from now, for the
  // current stall window (if any) to close. 0 = not stalled.
  Tick DmaStallDelay(int node_id);

 private:
  const Tick* now_;
  obs::Registry* metrics_;
  FaultPlan plan_;
  Rng rng_;
  bool active_ = false;

  obs::Counter* bitflips_m_ = nullptr;
  obs::Counter* drops_m_ = nullptr;
  obs::Counter* delays_m_ = nullptr;
  obs::Counter* delay_ns_m_ = nullptr;
  obs::Counter* dma_stalls_m_ = nullptr;
  obs::Counter* dma_stall_ns_m_ = nullptr;
};

}  // namespace vmmc::sim
