// Deterministic fault injection for the simulated platform.
//
// A FaultPlan describes what should go wrong — bit flips on fabric links
// (caught by the CRC-8 at the receiving NIC), whole-packet drops, bounded
// delivery jitter, and host-DMA engine stalls — and the FaultInjector,
// owned by the Simulator, executes it under its own seeded Rng. Fault
// decisions draw from that dedicated stream, so two runs with the same
// seed and plan are byte-identical, and enabling faults does not perturb
// any other random decision in the run.
//
// Hardware hooks query the injector at the point the fault would occur:
// Link::Send consults OnLinkTransmit for every packet put on a wire, and
// NicCard's host-DMA engines consult DmaStallDelay before each transfer.
// An unconfigured injector answers "no fault" without touching the Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/obs/metrics.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/time.h"

namespace vmmc::sim {

// One fabric-link fault rule. Rules with link_id == -1 apply to every
// link; a rule naming a specific link applies on top of (after) the
// wildcard rules, so rates compose per packet.
struct LinkFaultRule {
  int link_id = -1;           // -1: all links
  double bitflip_rate = 0.0;  // P(flip one payload bit) per packet
  double drop_rate = 0.0;     // P(lose the packet on the wire) per packet
  double delay_rate = 0.0;    // P(extra delivery jitter) per packet
  Tick max_delay = 0;         // jitter drawn uniform in [1, max_delay]
};

// A host-DMA stall window on one node's NIC. The engine performs no
// transfer while stalled; transfers issued inside a window wait for it to
// close. With period > 0 the window recurs (start + k*period for all k).
struct DmaStallRule {
  int node_id = -1;  // -1: all nodes
  Tick start = 0;
  Tick duration = 0;
  Tick period = 0;  // 0: one-shot
};

struct FaultPlan {
  std::uint64_t seed = 0xFA017ull;
  std::vector<LinkFaultRule> links;
  std::vector<DmaStallRule> dma_stalls;

  bool empty() const { return links.empty() && dma_stalls.empty(); }

  // Convenience: one wildcard rule for every link.
  static FaultPlan AllLinks(LinkFaultRule rule, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    rule.link_id = -1;
    plan.links.push_back(rule);
    return plan;
  }
};

class FaultInjector {
 public:
  // What happens to one packet on one link.
  struct LinkVerdict {
    bool drop = false;
    bool corrupted = false;
    Tick extra_delay = 0;
  };

  FaultInjector(const Tick* now, obs::Registry* metrics)
      : now_(now), metrics_(metrics) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs `plan` and reseeds the fault Rng from plan.seed. Replaces any
  // previous plan; an empty plan deactivates the injector.
  void Configure(FaultPlan plan);
  void Clear() { Configure(FaultPlan{}); }

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  // Decides the fate of one packet entering link `link_id`. May flip one
  // bit in `payload` (the receiver's CRC check then fails, as on real
  // hardware). Counts into fault.injected.*.
  LinkVerdict OnLinkTransmit(int link_id, std::vector<std::uint8_t>& payload);

  // How long node `node_id`'s host-DMA engine must wait, from now, for the
  // current stall window (if any) to close. 0 = not stalled.
  Tick DmaStallDelay(int node_id);

 private:
  const Tick* now_;
  obs::Registry* metrics_;
  FaultPlan plan_;
  Rng rng_;
  bool active_ = false;

  obs::Counter* bitflips_m_ = nullptr;
  obs::Counter* drops_m_ = nullptr;
  obs::Counter* delays_m_ = nullptr;
  obs::Counter* delay_ns_m_ = nullptr;
  obs::Counter* dma_stalls_m_ = nullptr;
  obs::Counter* dma_stall_ns_m_ = nullptr;
};

}  // namespace vmmc::sim
