// Deterministic PRNG (xoshiro256**) for workload generation and fault
// injection. std::mt19937 is avoided so traces are reproducible across
// standard-library implementations.
#pragma once

#include <cstdint>

namespace vmmc::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(std::uint64_t seed);

  std::uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0. Uses rejection sampling so
  // the distribution is exactly uniform.
  std::uint64_t UniformU64(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  bool Bernoulli(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

 private:
  std::uint64_t s_[4];
};

}  // namespace vmmc::sim
