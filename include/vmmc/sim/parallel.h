// Conservative parallel discrete-event engine.
//
// A ParallelEngine owns N shards, each a full Simulator (its own pooled
// event queue, metrics registry, tracer, fault injector and RNG streams).
// Model components — a node's host+NIC, a switch, the Ethernet segment —
// are logical processes (LPs): each is constructed against exactly one
// shard's Simulator and only ever touches state owned by that shard. A
// partition planner (see vmmc/vmmc/runtime.h for the cluster-level one)
// decides the LP -> shard grouping; the engine itself is topology-blind.
//
// Synchronization is conservative with a fixed lookahead L (the minimum
// cross-LP latency — for the Myrinet fabric, one link's propagation
// delay, NetParams::link_latency). Execution proceeds in iterations; each
// iteration executes one absolute time window [w, w+L) on every shard:
//
//   1. wait      — all shards have finished executing iteration k-1
//                  (a scan over per-shard atomic counters: the lower
//                  bound on timestamp is implied by every neighbour
//                  having committed its window, no null messages needed);
//   2. drain     — pop every cross-LP event committed at k-1 from the
//                  SPSC channels (channel.h) and schedule it locally,
//                  in (time, source shard, push order) — deterministic;
//   3. min       — publish this shard's next event time; the global
//                  minimum M over all shards picks the next window
//                  (idle regions are skipped in one hop, so a quiet
//                  100 us Ethernet wait does not cost 2000 iterations);
//   4. execute   — run all local events with time < (floor(M/L)+1)*L and
//                  park every shard clock on that window edge (clocks
//                  never diverge across shards, even through idle skips),
//                  buffering cross-LP sends into channels; commit the
//                  channels and publish the iteration counter.
//
// Events generated in window k for another shard always carry time
// >= k_end when the sender respects the lookahead (a Myrinet link's
// delivery is at least link_latency in the future), so draining at k+1
// never delivers into the past. The few genuinely zero-lookahead edges in
// the model (wormhole StallUntil backpressure, misroute drop notices,
// Ethernet handoffs to the shared-segment LP) are clamped at drain time
// to the receiver's current instant — at most one window (50 ns) late,
// deterministically; DESIGN.md "Threading model" discusses why that
// relaxation is sound for each edge.
//
// Determinism. Every quantity steering execution — window starts, drain
// order, merge keys — is a pure function of the partition and the model,
// not of thread scheduling. Hence the engine's core guarantee: for a
// fixed partition, runs are bit-identical for ANY worker thread count
// (1, 2, 8, ... threads all dispatch the same events at the same ticks
// in the same per-shard order). sim_parallel_test.cpp asserts this.
//
// Worker threads. Shards are distributed round-robin over
// min(requested, num_shards) workers; the caller's thread acts as worker
// 0 for the duration of a Run* call. Requesting more workers than cores
// is allowed (the waits fall back from spinning to yielding) but only
// adds overhead — pick the worker count to fit the machine (the
// ClusterRuntime front-end takes it from VMMC_THREADS).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "vmmc/sim/channel.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/time.h"

namespace vmmc::sim {

class ParallelEngine {
 public:
  struct Options {
    // Worker threads for Run* calls; 0 means one per shard. Values above
    // num_shards are clamped. The caller decides whether to exceed the
    // machine's core count (see ClusterRuntime::EnvThreads).
    int workers = 0;
    // Per-channel slot count; one channel exists per ordered shard pair.
    // Bounds the cross-LP events a single shard pair can generate inside
    // one lookahead window (overflow aborts loudly — see channel.h).
    std::size_t channel_capacity = 1024;
  };

  explicit ParallelEngine(Tick lookahead);  // default Options
  ParallelEngine(Tick lookahead, Options options);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  // --- setup (single-threaded, before the first Run* call) ---

  // Adds one shard and returns its id. The shard's Simulator is owned by
  // the engine; components of the LPs mapped to this shard are built
  // against it exactly as they would be against a standalone Simulator.
  int AddShard();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Tick lookahead() const { return lookahead_; }
  Simulator& shard(int i) { return *shards_[static_cast<std::size_t>(i)]->sim; }
  const Simulator& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)]->sim;
  }

  // --- cross-shard scheduling ---

  // Schedules `fn` at absolute time `t` on shard `to`. Must be called
  // from shard `from`'s execution context (or between Run* calls). The
  // event becomes visible to `to` at the next window boundary; if `t`
  // has passed by then (a zero-lookahead edge), it is clamped to the
  // receiver's current instant at drain time.
  template <typename F>
  void PostRemote(int from, int to, Tick t, F&& fn) {
    assert(from >= 0 && from < num_shards() && to >= 0 && to < num_shards());
    assert(from != to && "same-shard events go through Simulator::At");
    ChannelTo(from, to).Push(t, std::forward<F>(fn));
  }

  // --- execution (drives worker threads; not reentrant) ---

  // Runs until every shard's queue and every channel is empty. Returns
  // the total number of events dispatched across shards during the call.
  std::uint64_t RunUntilQuiescent();

  // Runs until `pred()` is true or the system quiesces. The predicate is
  // evaluated between windows, on the caller's thread, with every shard
  // paused at the same iteration boundary — it may read cross-shard state
  // written strictly before that boundary. Returns true if the predicate
  // was satisfied, false on quiescence — mirroring Simulator::RunUntil,
  // except the stop lands on the next window boundary (<= lookahead
  // ticks later in sim time) instead of the very next event.
  bool RunUntil(std::function<bool()> pred);

  // --- post-run introspection ---

  // Total events dispatched across all shards since construction.
  std::uint64_t events_processed() const;
  // Maximum now() over shards — the fleet-wide clock after a run.
  Tick now() const;
  // Folds every shard's metrics registry into `out` (counters sum,
  // histograms merge, gauges merge approximately; see Registry::MergeFrom)
  // — the "merge per-LP registries at dump time" half of the obs story.
  void MergeMetricsInto(obs::Registry& out) const;

 private:
  struct Shard {
    std::unique_ptr<Simulator> sim;
    // Iterations this shard has fully executed / drained. Padded: these
    // are the only cross-thread contended words in the steady state.
    alignas(64) std::atomic<std::uint64_t> exec_done{0};
    alignas(64) std::atomic<std::uint64_t> drain_done{0};
    alignas(64) std::atomic<Tick> next_time{0};
  };

  static constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();

  SpscChannel& ChannelTo(int from, int to) {
    return *channels_[static_cast<std::size_t>(from) *
                          static_cast<std::size_t>(num_shards()) +
                      static_cast<std::size_t>(to)];
  }

  void Finalize();  // builds the channel matrix on first run
  int WorkerCount() const;
  void WorkerLoop(int worker, int num_workers,
                  const std::function<bool()>* pred);
  void DrainShard(int shard, std::uint64_t iter);
  std::uint64_t RunImpl(const std::function<bool()>* pred);

  Tick lookahead_;
  Options options_;
  // unique_ptr: Shard embeds atomics (immovable) and wants stable,
  // cache-line-padded addresses.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Dense (from, to) matrix; diagonal entries stay null. Built lazily at
  // the first Run* call, after which AddShard is rejected.
  std::vector<std::unique_ptr<SpscChannel>> channels_;
  bool finalized_ = false;
  // Iteration counter continues across Run* calls so channel commit slots
  // stay consistent.
  std::uint64_t next_iter_ = 1;
  // Worker-0 decisions for the current iteration, read by the others
  // after the drain barrier.
  std::atomic<std::uint64_t> stop_iter_{0};
  bool pred_satisfied_ = false;
};

}  // namespace vmmc::sim
