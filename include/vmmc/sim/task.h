// Task<T>: a coroutine returning a value, for API calls that both take
// simulated time and produce a result (e.g. Import returns a proxy
// address). Semantics mirror sim::Process: lazy start, exactly one awaiter,
// symmetric transfer on start and completion.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace vmmc::sim {

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    bool started = false;
    bool finished = false;
    std::coroutine_handle<> joiner;
    std::exception_ptr error;
    std::optional<T> value;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        p.finished = true;
        return p.joiner ? p.joiner
                        : std::coroutine_handle<>(std::noop_coroutine());
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Release();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Release(); }

  bool valid() const { return h_ != nullptr; }
  bool finished() const { return h_ && h_.promise().finished; }

  auto operator co_await() {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.promise().finished; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        promise_type& p = h.promise();
        assert(!p.joiner && "a Task may be awaited by one coroutine only");
        p.joiner = cont;
        if (!p.started) {
          p.started = true;
          return h;
        }
        return std::noop_coroutine();
      }
      T await_resume() {
        promise_type& p = h.promise();
        if (p.error) {
          std::exception_ptr e = std::exchange(p.error, nullptr);
          std::rethrow_exception(e);
        }
        assert(p.value.has_value());
        return std::move(*p.value);
      }
    };
    assert(h_ && "awaiting an empty Task");
    return Awaiter{h_};
  }

 private:
  void Release() {
    if (!h_) return;
    promise_type& p = h_.promise();
    // Tasks are always consumed by an awaiter in this codebase; a started
    // but unfinished Task being dropped would leave dangling wake-ups, so
    // that is a programming error.
    assert((!p.started || p.finished) && "dropping a running Task");
    if (p.error) std::terminate();  // error never observed
    h_.destroy();
    h_ = nullptr;
  }

  Handle h_;
};

}  // namespace vmmc::sim
