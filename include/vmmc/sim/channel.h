// Cross-LP event channels for the parallel engine (see parallel.h).
//
// A SpscChannel carries events from one shard (logical-process group) to
// another: exactly one producer thread pushes, exactly one consumer thread
// drains, so the ring needs no locks — just two atomic indices. Each slot
// is a (time, fn) pair: the absolute tick the event is due plus a movable
// type-erased closure (MovableFn) that the receiving shard re-schedules
// into its own Simulator queue.
//
// Wire format and ordering. Slots are consumed strictly FIFO, and the
// receiving shard assigns fresh local sequence numbers as it drains, so
// the effective cross-LP key is (time, channel, ring position): two
// same-tick events from different source shards order by channel id, two
// from the same source by push order. All three components are
// deterministic functions of the simulation, never of thread timing.
//
// Window commits. The conservative engine executes in lookahead-sized
// windows (iterations). A sender buffers pushes privately and publishes
// them only at the end of its iteration k via Commit(k), which stores the
// ring tail into a small per-iteration slot ring (4 deep). The receiver,
// running iteration k+1, drains exactly the events committed through
// iteration k — even if the sender has already raced ahead into iteration
// k+1 and is pushing new events. That snapshot is what makes the merge
// deterministic regardless of how far individual worker threads have
// progressed: global lockstep keeps any two shards within one iteration
// of each other, so a 4-deep commit ring can never be overwritten while
// it is still being read.
//
// Capacity is fixed (Options::channel_capacity in parallel.h). A channel
// only ever holds events committed in the last iteration or pushed in the
// current one — receivers drain every iteration — so occupancy is bounded
// by the cross-LP event rate of a single lookahead window. Overflow aborts
// with a diagnostic rather than silently blocking: blocking the producer
// mid-window could deadlock the lockstep protocol.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "vmmc/sim/time.h"

namespace vmmc::sim {

// A movable, type-erased callable. The Simulator's own InlineFn (see
// simulator.h) is deliberately immovable — event nodes have stable
// addresses — but channel slots are recycled ring storage, so the closure
// must be movable out of the slot and into the receiving queue. Captures
// up to kInlineBytes live in place; larger ones fall back to a single
// heap allocation whose pointer is what actually moves.
class MovableFn {
 public:
  // 72 inline bytes keeps sizeof(MovableFn) == 96 == InlineFn::kInlineBytes,
  // so a drained closure re-scheduled via Simulator::At() still stores
  // inline in the event node instead of forcing the heap path.
  static constexpr std::size_t kInlineBytes = 72;

  MovableFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, MovableFn>>>
  explicit MovableFn(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>);
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      if constexpr (!std::is_trivially_destructible_v<Fn>) {
        destroy_ = [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); };
      }
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      relocate_ = [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      };
      destroy_ = [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); };
    }
  }

  MovableFn(MovableFn&& other) noexcept { MoveFrom(other); }
  MovableFn& operator=(MovableFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  MovableFn(const MovableFn&) = delete;
  MovableFn& operator=(const MovableFn&) = delete;
  ~MovableFn() { Reset(); }

  void operator()() {
    assert(invoke_ != nullptr);
    invoke_(storage_);
  }
  explicit operator bool() const { return invoke_ != nullptr; }

  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void MoveFrom(MovableFn& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Fixed-capacity single-producer single-consumer ring of (time, fn)
// events with per-iteration commit points. See the file comment for the
// protocol; parallel.h owns one channel per ordered shard pair.
class SpscChannel {
 public:
  struct Slot {
    Tick time = 0;
    MovableFn fn;
  };

  explicit SpscChannel(std::size_t capacity) : ring_(RoundUpPow2(capacity)) {
    for (auto& c : committed_) c.store(0, std::memory_order_relaxed);
  }
  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  // Producer: buffer one event. Not visible to the consumer until the
  // producer's next Commit().
  template <typename F>
  void Push(Tick time, F&& fn) {
    if (tail_ - head_pub_.load(std::memory_order_acquire) >= ring_.size()) {
      std::fprintf(stderr,
                   "SpscChannel: capacity %zu exceeded in one sync window "
                   "(raise ParallelEngine::Options::channel_capacity)\n",
                   ring_.size());
      std::abort();
    }
    Slot& s = ring_[static_cast<std::size_t>(tail_) & (ring_.size() - 1)];
    s.time = time;
    s.fn = MovableFn(std::forward<F>(fn));
    ++tail_;
  }

  // Producer: publish everything pushed through iteration `iter`.
  void Commit(std::uint64_t iter) {
    committed_[iter & 3].store(tail_, std::memory_order_release);
  }

  // Consumer: drain every event committed at iteration `iter`, FIFO.
  // `sink(time, fn)` receives the slot contents; `fn` is an rvalue
  // MovableFn to move from. Returns the number of events drained.
  template <typename Sink>
  std::size_t Drain(std::uint64_t iter, Sink&& sink) {
    const std::uint64_t limit = committed_[iter & 3].load(std::memory_order_acquire);
    std::size_t n = 0;
    while (head_ != limit) {
      Slot& s = ring_[static_cast<std::size_t>(head_) & (ring_.size() - 1)];
      sink(s.time, std::move(s.fn));
      s.fn.Reset();
      ++head_;
      ++n;
    }
    if (n != 0) head_pub_.store(head_, std::memory_order_release);
    return n;
  }

  std::uint64_t pushed() const { return tail_; }

 private:
  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<Slot> ring_;
  // Producer-private tail; published through the commit ring only.
  std::uint64_t tail_ = 0;
  // Consumer-private head; published for the producer's capacity check.
  std::uint64_t head_ = 0;
  alignas(64) std::atomic<std::uint64_t> committed_[4];
  alignas(64) std::atomic<std::uint64_t> head_pub_{0};
};

}  // namespace vmmc::sim
