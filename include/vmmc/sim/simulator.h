// Discrete-event simulation engine.
//
// The Simulator owns a time-ordered queue of callbacks. Hardware and
// software components are modelled as coroutines (see process.h) that
// suspend on awaitables whose wake-ups flow through this queue, so the
// entire system is single-threaded and deterministic: events at equal
// times fire in scheduling order (FIFO tie-break on a sequence number).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/time.h"

namespace vmmc::sim {

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  // Observability (see include/vmmc/obs/): every component reachable from
  // this simulator reports into one registry and one tracer, so a whole
  // run snapshots / exports from a single place.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }

  // Fault injection (see sim/fault.h): hardware models consult this on
  // their fault points; tests and benches install a FaultPlan through it.
  FaultInjector& faults() { return faults_; }

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

  // Schedules `fn` at absolute time `t` (must be >= now()).
  void At(Tick t, std::function<void()> fn);
  // Schedules `fn` after `delay` ticks.
  void In(Tick delay, std::function<void()> fn) { At(now_ + delay, std::move(fn)); }
  // Schedules `fn` at the current time, after already-queued events at now().
  void Post(std::function<void()> fn) { At(now_, std::move(fn)); }

  // Resumes a coroutine through the event queue (keeps ordering FIFO and
  // avoids unbounded recursion from synchronous resumption chains).
  void Resume(std::coroutine_handle<> h, Tick delay = 0);

  // Starts a detached coroutine at the current time. The coroutine frame
  // frees itself on completion.
  void Spawn(Process p);

  // Runs one event. Returns false if the queue is empty.
  bool Step();

  // Runs until the queue drains or `max_events` fire. Returns events run.
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX);

  // Runs all events with time <= t; leaves now() == t.
  void RunUntilTime(Tick t);

  // Runs until pred() is true (checked after every event). Returns true if
  // the predicate was satisfied, false if the queue drained first.
  template <typename Pred>
  bool RunUntil(Pred&& pred, std::uint64_t max_events = UINT64_MAX) {
    while (!pred()) {
      if (max_events-- == 0) return false;
      if (!Step()) return false;
    }
    return true;
  }

  // Awaitable: suspends the calling coroutine for `delay` ticks.
  // `co_await sim.Delay(0)` yields through the event queue (fair handoff).
  auto Delay(Tick delay) {
    struct Awaiter {
      Simulator& sim;
      Tick delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.Resume(h, delay); }
      void await_resume() const noexcept {}
    };
    assert(delay >= 0);
    return Awaiter{*this, delay};
  }

 private:
  struct Event {
    Tick time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  obs::Registry metrics_;
  obs::Tracer tracer_{&now_};
  FaultInjector faults_{&now_, &metrics_};
};

}  // namespace vmmc::sim
