// Discrete-event simulation engine.
//
// The Simulator owns a time-ordered queue of callbacks. Hardware and
// software components are modelled as coroutines (see process.h) that
// suspend on awaitables whose wake-ups flow through this queue, so each
// Simulator is single-threaded and deterministic: events at equal
// times fire in scheduling order (FIFO tie-break on a sequence number).
// A run uses either one standalone Simulator for the whole system (the
// serial substrate behind every golden number in EXPERIMENTS.md) or many
// of them as shards of a sim::ParallelEngine (parallel.h), which runs
// lookahead-wide time windows on worker threads; all code modelled
// *inside* a shard stays single-threaded either way.
//
// The queue is built for wall-clock throughput (see "Event engine
// internals" in ARCHITECTURE.md): events live in pool-allocated intrusive
// nodes ordered by a d-ary heap of (time, seq) keys, events at the
// current time bypass the heap through an intrusive FIFO, coroutine
// resumption and process start are first-class event kinds carrying only
// a frame address, and callbacks store their captures inline in the node
// (InlineFn) instead of behind a std::function allocation. The dispatch
// order is bit-identical to a (time, seq)-keyed priority queue: seq is a
// single monotone counter consumed by every scheduling path, so the key
// order is total.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/time.h"

namespace vmmc::sim {

class ParallelEngine;

namespace detail {

// A callable stored in place: captures up to kInlineBytes live inside the
// event node itself; larger ones (rare, none on the steady-state paths)
// fall back to a single heap allocation. Unlike std::function this never
// moves after construction — event nodes have stable addresses — so it
// needs no move support and accepts move-only captures.
class InlineFn {
 public:
  static constexpr std::size_t kInlineBytes = 96;

  InlineFn() noexcept = default;
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { Reset(); }

  template <typename F>
  void Emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>);
    assert(invoke_ == nullptr && "InlineFn already holds a callable");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      // Trivially destructible captures (the common case) skip the
      // destroy indirection entirely.
      if constexpr (!std::is_trivially_destructible_v<Fn>) {
        destroy_ = [](void* s) {
          std::launder(reinterpret_cast<Fn*>(s))->~Fn();
        };
      }
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      destroy_ = [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); };
    }
  }

  void Invoke() { invoke_(storage_); }

  void Reset() {
    if (destroy_ != nullptr) {
      destroy_(storage_);
      destroy_ = nullptr;
    }
    invoke_ = nullptr;
  }

 private:
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace detail

class Simulator {
 public:
  // Sentinel returned by next_event_time() for an empty queue.
  static constexpr Tick kNoEventTime = std::numeric_limits<Tick>::max();

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  // Observability (see include/vmmc/obs/): every component reachable from
  // this simulator reports into one registry and one tracer, so a whole
  // run snapshots / exports from a single place.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }

  // Fault injection (see sim/fault.h): hardware models consult this on
  // their fault points; tests and benches install a FaultPlan through it.
  FaultInjector& faults() { return faults_; }

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const {
    return heap_.empty() && fifo_head_ == nullptr && tail_head_ == nullptr;
  }

  // Schedules `fn` at absolute time `t` (must be >= now()).
  template <typename F>
  void At(Tick t, F&& fn) {
    assert(t >= now_ && "cannot schedule in the past");
    EventNode* n = AllocNode(t);
    n->kind = EventNode::Kind::kCallback;
    n->fn.Emplace(std::forward<F>(fn));
    Enqueue(n);
  }
  // Schedules `fn` after `delay` ticks (must not be negative).
  template <typename F>
  void In(Tick delay, F&& fn) {
    assert(delay >= 0 && "delays cannot be negative");
    At(now_ + delay, std::forward<F>(fn));
  }
  // Schedules `fn` at the current time, after already-queued events at now().
  template <typename F>
  void Post(F&& fn) {
    At(now_, std::forward<F>(fn));
  }

  // Resumes a coroutine through the event queue (keeps ordering FIFO and
  // avoids unbounded recursion from synchronous resumption chains). This
  // is the dominant event kind — every Delay/Event/Semaphore/Mailbox
  // wake-up lands here — so it stores only the frame address: no closure,
  // no allocation.
  void Resume(std::coroutine_handle<> h, Tick delay = 0) {
    assert(delay >= 0 && "delays cannot be negative");
    EventNode* n = AllocNode(now_ + delay);
    n->kind = EventNode::Kind::kResume;
    n->coro = h.address();
    Enqueue(n);
  }

  // Starts a detached coroutine at the current time. The coroutine frame
  // frees itself on completion.
  void Spawn(Process p);

  // Runs one event. Returns false if the queue is empty.
  bool Step();

  // Runs until the queue drains or `max_events` fire. Returns events run.
  std::uint64_t Run(std::uint64_t max_events = UINT64_MAX);

  // Runs all events with time <= t; leaves now() == t.
  void RunUntilTime(Tick t);

  // --- parallel-engine hooks (see sim/parallel.h) ---

  // Marks this simulator as shard `shard_id` of `engine`. Called by
  // ParallelEngine::AddShard. Detaches the simulator from the global log
  // clock: with several shards advancing concurrently there is no single
  // "current" sim time for log lines to stamp.
  void BindShard(ParallelEngine* engine, int shard_id);
  // The owning engine, or nullptr for a standalone simulator. Components
  // use this to route cross-shard events through PostRemote instead of At.
  ParallelEngine* engine() const { return engine_; }
  int shard_id() const { return shard_id_; }

  // Time of the earliest queued event, or Tick max if the queue is empty.
  // The parallel engine's window-selection scan; O(1).
  Tick next_event_time() const {
    Tick t = fifo_head_ != nullptr ? now_ : kNoEventTime;
    if (tail_head_ != nullptr) t = std::min(t, tail_head_->time);
    if (!heap_.empty()) t = std::min(t, heap_.front().time);
    return t;
  }

  // Runs all events with time < end, strictly, then parks now() on the
  // window edge (like RunUntilTime, but exclusive of `end`). Parking is
  // what keeps every shard's clock identical between engine iterations:
  // work injected at one shard's now() between runs is at a globally
  // consistent instant, and a lookahead-respecting cross-shard event can
  // never arrive behind its receiver's clock. Returns the number of
  // events dispatched.
  std::uint64_t RunWindow(Tick end);

  // Runs until pred() is true (checked after every event). Returns true if
  // the predicate was satisfied, false if the queue drained first.
  template <typename Pred>
  bool RunUntil(Pred&& pred, std::uint64_t max_events = UINT64_MAX) {
    while (!pred()) {
      if (max_events-- == 0) return false;
      if (!Step()) return false;
    }
    return true;
  }

  // Awaitable: suspends the calling coroutine for `delay` ticks.
  // `co_await sim.Delay(0)` yields through the event queue (fair handoff).
  auto Delay(Tick delay) {
    struct Awaiter {
      Simulator& sim;
      Tick delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.Resume(h, delay); }
      void await_resume() const noexcept {}
    };
    assert(delay >= 0);
    return Awaiter{*this, delay};
  }

 private:
  // One scheduled event. Nodes are pool-allocated and recycled through an
  // intrusive free list; `next` doubles as the now-FIFO chain link.
  // Field order is deliberate: everything the kResume/kSpawn dispatch path
  // reads (time, seq, next, coro, kind) sits in the node's first cache
  // line; the callback capture area comes last.
  struct EventNode {
    enum class Kind : std::uint8_t { kCallback, kResume, kSpawn };
    Tick time = 0;
    std::uint64_t seq = 0;
    EventNode* next = nullptr;  // free-list / now-FIFO link
    void* coro = nullptr;       // kResume / kSpawn: coroutine frame address
    Kind kind = Kind::kCallback;
    detail::InlineFn fn;        // kCallback only
  };

  // Heap entries carry the full (time, seq) key next to the node pointer:
  // sift comparisons stay inside the contiguous heap array and never
  // chase node pointers (time ties — bursts of same-tick wake-ups — are
  // the common case on the hot path).
  struct HeapSlot {
    Tick time;
    std::uint64_t seq;
    EventNode* node;
  };
  static bool SlotBefore(const HeapSlot& a, const HeapSlot& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // seq is unique: no further tie
  }

  EventNode* AllocNode(Tick t) {
    EventNode* n = free_nodes_;
    if (n != nullptr) {
      free_nodes_ = n->next;
    } else {
      if (wilderness_ == wilderness_end_) RefillPool();
      n = ::new (static_cast<void*>(wilderness_)) EventNode;
      ++wilderness_;
    }
    n->time = t;
    n->seq = seq_++;
    return n;
  }
  void FreeNode(EventNode* n) {
    n->next = free_nodes_;
    free_nodes_ = n;
  }
  void RefillPool();

  // Three queue tiers, cheapest first. Events at exactly now() append to
  // an intrusive FIFO. Future events whose (time, seq) key is >= the last
  // event of the sorted tail list append there in O(1) — simulations
  // overwhelmingly schedule in increasing time order, so this absorbs the
  // heap traffic. Only out-of-order future pushes fall through to the
  // 4-ary heap. PopNext takes the global (time, seq) minimum of the three
  // tiers, so dispatch order is identical to a single priority queue.
  void Enqueue(EventNode* n) {
    if (n->time == now_) {
      n->next = nullptr;
      if (fifo_tail_ != nullptr) {
        fifo_tail_->next = n;
      } else {
        fifo_head_ = n;
      }
      fifo_tail_ = n;
      return;
    }
    // seq is monotone and tail_tail_ was allocated earlier, so on equal
    // times n still sorts after it — time comparison alone suffices.
    if (tail_tail_ == nullptr || n->time >= tail_tail_->time) {
      n->next = nullptr;
      if (tail_tail_ != nullptr) {
        tail_tail_->next = n;
      } else {
        tail_head_ = n;
      }
      tail_tail_ = n;
      return;
    }
    HeapPush(n);
  }

  static constexpr std::size_t kHeapArity = 4;

  void HeapPush(EventNode* n) {
    const HeapSlot slot{n->time, n->seq, n};
    std::size_t i = heap_.size();
    heap_.push_back(slot);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!SlotBefore(slot, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = slot;
  }

  EventNode* HeapPopTop();
  EventNode* PopNext();
  void Dispatch(EventNode* n);

  std::vector<HeapSlot> heap_;        // out-of-order future events, 4-ary min-heap
  EventNode* fifo_head_ = nullptr;    // events at now(), FIFO order
  EventNode* fifo_tail_ = nullptr;
  EventNode* tail_head_ = nullptr;    // future events, sorted by (time, seq)
  EventNode* tail_tail_ = nullptr;
  EventNode* free_nodes_ = nullptr;   // recycled nodes
  EventNode* wilderness_ = nullptr;   // unconstructed tail of newest block
  EventNode* wilderness_end_ = nullptr;
  // Fixed-size blocks: 512 nodes keeps a block under glibc's 128 KB mmap
  // threshold, so freed blocks are recycled by the allocator instead of
  // being returned to (and re-zeroed by) the kernel.
  static constexpr std::size_t kPoolBlockNodes = 512;
  std::vector<std::unique_ptr<unsigned char[]>> pool_blocks_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  ParallelEngine* engine_ = nullptr;  // owning engine when sharded
  int shard_id_ = -1;
  obs::Registry metrics_;
  obs::Tracer tracer_{&now_};
  FaultInjector faults_{&now_, &metrics_};
};

}  // namespace vmmc::sim
