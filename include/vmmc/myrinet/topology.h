// Canned multi-switch topologies for the Myrinet fabric, scaling the
// paper's 4-node/1-switch testbed to tens of nodes.
//
// A TopologyConfig (or its text form, see ParseTopologySpec) names a
// shape; BuildTopology creates the switch mesh inside a Fabric, wires the
// inter-switch links, and returns the (switch, port) slot where the i-th
// NIC must attach — the cluster assembly registers NIC endpoints in that
// order, so nic id i always sits in slot i. For the fat tree the builder
// also installs a route oracle on the fabric (Fabric::SetRouteOracle)
// that spreads traffic across spine switches deterministically by
// (src + dst) % spines; plain BFS would funnel every inter-leaf route
// through spine 0 and manufacture congestion that the real dispersive
// routes of a Myrinet Clos network do not have. Ring and mesh rely on the
// fabric's BFS, whose id-ordered tie-breaking is already deterministic.
//
// Shapes (p = ports per switch):
//   kSingleSwitch  all nodes on one p-port crossbar (max p nodes).
//   kChain         switches in a line, 2 ports reserved for neighbors;
//                  p-2 nodes per switch.
//   kFatTree       2-level Clos: p/2 leaf downlinks and p/2 spines, so
//                  capacity is (p/2) * p nodes (8-port: 32; 16-port: 128).
//                  Full bisection: any traffic permutation can be routed
//                  without oversubscription.
//   kRing          switches in a cycle, 2 ports for neighbors, p-2 nodes
//                  per switch; BFS picks the shorter way round.
//   kMesh          rows x cols grid, 4 ports for N/E/S/W neighbors, p-4
//                  nodes per switch.
#pragma once

#include <string>

#include "vmmc/myrinet/fabric.h"
#include "vmmc/util/status.h"

namespace vmmc::myrinet {

enum class TopologyKind { kSingleSwitch, kChain, kFatTree, kRing, kMesh };

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kSingleSwitch;
  int num_nodes = 4;
  int switch_ports = 8;  // crossbar radix (the paper's M2F-SW8 has 8)
  // kChain / kRing: number of switches; 0 = fewest that fit num_nodes.
  int num_switches = 0;
  // kMesh: grid shape; 0 = squarest grid that fits num_nodes.
  int mesh_rows = 0;
  int mesh_cols = 0;
};

// Parses "kind:nodes[@ports]" — e.g. "single:4", "chain:12@8",
// "fattree:16", "ring:8", "mesh:24@8". Switch counts / grid shape are
// derived (the 0 defaults above).
Result<TopologyConfig> ParseTopologySpec(const std::string& spec);

// Human-readable "kind:nodes@ports" form (for bench table labels).
std::string TopologySpecString(const TopologyConfig& config);

// Builds the configured switch mesh in `fabric` (which must be empty),
// wires inter-switch links, installs the fat-tree route oracle when
// applicable, and returns one NIC slot per node, index == nic id.
// Fails when the shape cannot host num_nodes (e.g. fat tree of 8-port
// switches beyond 32 nodes) or the config is malformed.
Result<TopologyPlan> BuildTopology(Fabric& fabric, const TopologyConfig& config);

}  // namespace vmmc::myrinet
