// Myrinet packets: a source route (one output-port byte consumed per
// switch, standard Myrinet format, §4.5), an opaque payload, and a CRC-8
// appended by the link hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/myrinet/crc8.h"

namespace vmmc::myrinet {

// The remaining source route: front() is the output port at the next switch.
using Route = std::vector<std::uint8_t>;

struct Packet {
  int src_nic = -1;   // injecting NIC id (diagnostics only; not on the wire)
  Route route;        // consumed hop by hop
  std::vector<std::uint8_t> payload;
  std::uint8_t crc = 0;

  // Bytes occupying the wire: remaining route bytes + payload + CRC.
  std::size_t wire_bytes() const { return route.size() + payload.size() + 1; }

  // Link-hardware CRC, computed at injection over the payload.
  void StampCrc() { crc = Crc8(payload); }
  bool CrcOk() const { return Crc8(payload) == crc; }
};

}  // namespace vmmc::myrinet
