// Myrinet packets: a source route (one output-port byte consumed per
// switch, standard Myrinet format, §4.5), an opaque payload, and a CRC-8
// appended by the link hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/myrinet/crc8.h"
#include "vmmc/util/buffer.h"

namespace vmmc::myrinet {

// The remaining source route: front() is the output port at the next switch.
using Route = std::vector<std::uint8_t>;

// Payload bytes are shared, copy-on-write (see util/buffer.h): copying a
// Packet into a switch queue or the retx-pool bumps a refcount instead of
// duplicating the bytes, so a payload is written once at the source NIC
// and never copied again unless a fault rule actually mutates it.
using Buffer = util::Buffer;

struct Packet {
  int src_nic = -1;   // injecting NIC id (diagnostics only; not on the wire)
  Route route;        // consumed hop by hop
  Buffer payload;
  std::uint8_t crc = 0;

  // Bytes occupying the wire: remaining route bytes + payload + CRC.
  std::size_t wire_bytes() const { return route.size() + payload.size() + 1; }

  // Link-hardware CRC, computed at injection over the payload.
  void StampCrc() { crc = Crc8(payload); }
  bool CrcOk() const { return Crc8(payload) == crc; }
};

}  // namespace vmmc::myrinet
