// The Myrinet switching fabric: point-to-point links and crossbar switches
// (8 ports on the paper's M2F-SW8, configurable here) with source
// (cut-through / wormhole) routing and in-order delivery (§3). Switches
// compose into arbitrary multi-switch networks; the canned topologies
// (single crossbar, chain, 2-level fat tree, ring, mesh) live in
// topology.h.
//
// Timing model: a link serializes a packet at 160 MB/s and is occupied for
// the serialization time; the head of the packet arrives after the link
// propagation delay and a switch forwards it after its cut-through latency,
// so a multi-hop path pays the serialization cost once plus per-hop
// latencies — the wormhole approximation.
//
// Congestion model: each switch output port owns a bounded byte queue
// (NetParams::switch_port_queue_bytes — the analog of wormhole flit
// buffers). A routed packet that finds its output wire busy waits in that
// queue (counted as queue_wait); a packet that finds the queue *full*
// cannot leave its inbound wire, so that upstream link stalls until the
// output drains — head-of-line blocking. Incast and tree saturation
// therefore emerge from the model instead of being scripted; see
// DESIGN.md "Multi-switch fabrics".
// Parallel partitioning (see sim/parallel.h and DESIGN.md "Threading
// model"): every switch and NIC may be assigned its own shard Simulator
// at construction time. A link is owned by its *source* component's shard
// — Send executes there — and delivery to a destination on another shard
// crosses through the engine's SPSC channels with the link's propagation
// delay as lookahead. Wormhole stall-backs and drop notices are the two
// backward (zero-lookahead) edges; both are monotone or queue-posted, so
// the at-most-one-window delivery delay the engine imposes on them
// changes timing marginally but never correctness. When every component
// uses one simulator (the default single-thread mode), all of this
// collapses to the direct calls below.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "vmmc/myrinet/packet.h"
#include "vmmc/obs/metrics.h"
#include "vmmc/params.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/status.h"

namespace vmmc::myrinet {

class Link;

// Anything a link can terminate at. `head_time` is when the call happens;
// `tail_time` (ns, absolute sim time) is when the last byte will have
// arrived.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  // Head arrival of one packet. `from` is the delivering link (so a switch
  // can stall it for backpressure); nullptr when a test delivers directly.
  virtual void OnPacket(Packet packet, sim::Tick tail_time, Link* from) = 0;

  // Backward drop notification: the fabric tells the *source* NIC when a
  // switch discarded one of its packets (empty or invalid route), so the
  // loss is handled by the sender's recovery path instead of silence. The
  // packet is the dropped one, with the route bytes consumed so far gone.
  virtual void OnPacketDropped(const Packet& packet) { (void)packet; }
};

// Unidirectional link: serializes packets at NetParams::link_mb_s, delivers
// heads after link_latency, preserves injection order.
class Link {
 public:
  Link(sim::Simulator& sim, const NetParams& params, sim::Rng& rng);

  void set_destination(Endpoint* dst) { dst_ = dst; }
  // Partitioned wiring: `dst_sim` is the simulator the destination
  // endpoint executes on. When it differs from this link's owner and both
  // belong to a ParallelEngine, delivery crosses shards via PostRemote.
  void set_destination(Endpoint* dst, sim::Simulator* dst_sim) {
    dst_ = dst;
    dst_sim_ = dst_sim;
  }
  Endpoint* destination() const { return dst_; }

  // The simulator Send/StallUntil must execute on (the source side's).
  sim::Simulator& owner() const { return sim_; }

  // Fabric-assigned identity, used to address this link in a FaultPlan
  // (fault.h): flat id plus (origin switch, port) or origin NIC. Links
  // built outside a Fabric keep all -1 and still match wildcard rules.
  void set_site(const sim::LinkSite& site) { site_ = site; }
  const sim::LinkSite& site() const { return site_; }
  int id() const { return site_.link_id; }

  // Injects `packet`; honours occupancy (back-to-back packets queue on the
  // wire) and in-order delivery. May corrupt the payload per the injected
  // error rate; the CRC then fails at the receiver, as on real hardware.
  void Send(Packet packet);

  // First instant the wire is free again (ns, absolute sim time; <= now
  // means idle).
  sim::Tick busy_until() const { return busy_until_; }

  // Backpressure from the downstream switch: the wire stays occupied until
  // `t` (ns, absolute) because its in-flight packet cannot be buffered —
  // wormhole stalling. Monotone (never shortens existing occupancy).
  void StallUntil(sim::Tick t) {
    if (t > busy_until_) busy_until_ = t;
  }

  std::uint64_t packets_sent() const { return packets_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  // Total busy time spent serializing packets (ns) — the numerator of this
  // link's utilization.
  sim::Tick serialize_time() const { return ser_; }
  // Total time packets waited for the wire (head-of-line occupancy, ns).
  sim::Tick blocked_time() const { return blocked_; }

  // Wires per-link accounting into registry counters
  // (fabric.link<i>.{packets,bytes,ser_ns,blocked_ns}); unbound links
  // count into internal sinks.
  void BindMetrics(obs::Counter* packets, obs::Counter* bytes,
                   obs::Counter* ser_ns, obs::Counter* blocked_ns);

 private:
  sim::Simulator& sim_;
  const NetParams& params_;
  sim::Rng& rng_;
  Endpoint* dst_ = nullptr;
  sim::Simulator* dst_sim_ = nullptr;  // destination's shard (partitioned)
  sim::LinkSite site_;
  sim::Tick busy_until_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  sim::Tick ser_ = 0;
  sim::Tick blocked_ = 0;
  obs::Counter* packets_m_;
  obs::Counter* bytes_m_;
  obs::Counter* ser_ns_m_;
  obs::Counter* blocked_ns_m_;
};

// Crossbar switch (8 ports on the M2F-SW8; radix configurable). Consumes
// the first route byte to select the output port; a packet with an empty
// or invalid route is dropped (counted, and reported to the source NIC
// through the fabric's drop handler). Each output port owns a bounded
// queue; see the congestion model note at the top of this file.
class Switch : public Endpoint {
 public:
  Switch(sim::Simulator& sim, const NetParams& params, int id, int num_ports)
      : sim_(sim),
        params_(params),
        id_(id),
        out_links_(static_cast<std::size_t>(num_ports), nullptr),
        ports_(static_cast<std::size_t>(num_ports)) {}

  int id() const { return id_; }
  int num_ports() const { return static_cast<int>(out_links_.size()); }
  sim::Simulator& simulator() const { return sim_; }
  void AttachOutput(int port, Link* link) {
    out_links_.at(static_cast<std::size_t>(port)) = link;
  }
  Link* output(int port) const { return out_links_.at(static_cast<std::size_t>(port)); }

  void OnPacket(Packet packet, sim::Tick tail_time, Link* from) override;

  // Installed by the Fabric: invoked with every packet this switch
  // discards, so the drop can be propagated back to the source NIC.
  void set_drop_handler(std::function<void(Packet&&)> handler) {
    drop_handler_ = std::move(handler);
  }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t forwarded() const { return forwarded_; }
  // Total time routed packets sat in this switch's output queues waiting
  // for their wire (ns) — congestion that did not block upstream traffic.
  sim::Tick queue_wait() const { return queue_wait_; }
  // Times a packet could not even be buffered and stalled its inbound link
  // (wormhole backpressure), and the total upstream time lost to it (ns).
  std::uint64_t hol_stalls() const { return hol_stalls_; }
  sim::Tick hol_stall_time() const { return hol_stall_; }

  void BindMetrics(obs::Counter* forwarded, obs::Counter* dropped,
                   obs::Counter* queue_wait_ns, obs::Counter* hol_stalls,
                   obs::Counter* hol_stall_ns) {
    forwarded_m_ = forwarded;
    dropped_m_ = dropped;
    queue_wait_ns_m_ = queue_wait_ns;
    hol_stalls_m_ = hol_stalls;
    hol_stall_ns_m_ = hol_stall_ns;
  }

 private:
  // One output port's buffered packets (wire-bytes bounded by
  // switch_port_queue_bytes) with their enqueue times.
  struct OutPort {
    std::deque<std::pair<Packet, sim::Tick>> queue;
    std::size_t bytes = 0;
    bool draining = false;
  };

  // Places a routed packet in `port`'s queue, or stalls `from` and retries
  // when the queue cannot take it.
  void Enqueue(int port, Packet packet, Link* from);
  // StallUntil on `from`, routed to its owner shard when that differs
  // from this switch's (the zero-lookahead backward edge of the wormhole
  // model; StallUntil is monotone-max, so late application is safe).
  void StallLink(Link* from, sim::Tick until);
  // Sends queued packets onto `port`'s wire as it frees up, in order.
  void DrainPort(int port);

  sim::Simulator& sim_;
  const NetParams& params_;
  int id_;
  std::vector<Link*> out_links_;
  std::vector<OutPort> ports_;
  std::function<void(Packet&&)> drop_handler_;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
  sim::Tick queue_wait_ = 0;
  std::uint64_t hol_stalls_ = 0;
  sim::Tick hol_stall_ = 0;
  obs::Counter* forwarded_m_ = nullptr;
  obs::Counter* dropped_m_ = nullptr;
  obs::Counter* queue_wait_ns_m_ = nullptr;
  obs::Counter* hol_stalls_m_ = nullptr;
  obs::Counter* hol_stall_ns_m_ = nullptr;
};

// The fabric: a container of switches, NIC attachment points and links,
// plus the topology graph the mapping phase explores.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, const NetParams& params,
         std::uint64_t error_seed = 0xFAB41Cull)
      : sim_(sim), params_(params), rng_(error_seed) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const NetParams& params() const { return params_; }

  // --- topology construction ---
  // Adds a crossbar of `num_ports` ports; returns its switch id (0-based).
  // The second form places the switch LP on `sim` (a ParallelEngine
  // shard); the first uses the fabric's construction simulator.
  int AddSwitch(int num_ports = 8);
  int AddSwitch(sim::Simulator& sim, int num_ports);
  // Partition hook consulted by the one-argument AddSwitch: maps the
  // about-to-be-created switch id to its shard simulator. Installed by the
  // cluster assembly *before* running a topology builder, so the builders
  // themselves stay shard-oblivious.
  using SwitchShardPlanner = std::function<sim::Simulator&(int switch_id)>;
  void SetSwitchShardPlanner(SwitchShardPlanner planner) {
    switch_planner_ = std::move(planner);
  }
  // Registers a NIC endpoint; returns its nic id (0-based, == node id by
  // convention). The second form records the shard simulator the NIC
  // executes on, so links toward it deliver cross-shard.
  int AddNic(Endpoint* nic);
  int AddNic(Endpoint* nic, sim::Simulator& sim);
  // Wires NIC <-> switch port with a link pair.
  Status ConnectNic(int nic_id, int switch_id, int port);
  // Wires switch a, port pa <-> switch b, port pb with a link pair.
  Status ConnectSwitches(int a, int pa, int b, int pb);

  int num_nics() const { return static_cast<int>(nics_.size()); }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  Switch& switch_at(int id) { return *switches_.at(static_cast<std::size_t>(id)); }
  int num_links() const { return static_cast<int>(links_.size()); }
  const Link& link_at(int id) const { return *links_.at(static_cast<std::size_t>(id)); }

  // Flat link id of the link leaving output `port` of `switch_id`, or -1
  // if that port is unwired — the lookup FaultPlan writers use to pin a
  // rule to a topological position (the rule can also carry (switch, port)
  // directly; see fault.h).
  int LinkIdAt(int switch_id, int port) const;

  // --- use ---
  // NIC `nic_id` puts a packet on its outgoing link.
  Status Inject(int nic_id, Packet packet);

  // Graph query used by the network-mapping phase (see mapper.h): the
  // source route from one NIC to another, as the sequence of switch
  // output-port bytes consumed hop by hop. Deterministic: the installed
  // route oracle if a topology builder provided one (fat trees spread
  // traffic across spines this way), else BFS over the fabric graph with
  // fixed tie-breaking. Fails if disconnected.
  Result<Route> ComputeRoute(int src_nic, int dst_nic) const;

  // A topology builder's closed-form routing function (src nic, dst nic)
  // -> route; consulted by ComputeRoute before the BFS fallback. The
  // oracle may assume nic i sits in the builder's slot i (the cluster
  // assembly keeps that invariant).
  using RouteOracle = std::function<Result<Route>(int src_nic, int dst_nic)>;
  void SetRouteOracle(RouteOracle oracle) { oracle_ = std::move(oracle); }

  std::uint64_t total_link_packets() const;
  std::uint64_t drop_notices() const {
    return drop_notices_.load(std::memory_order_relaxed);
  }
  // Fabric-wide congestion totals (sums over switches; ns / counts).
  sim::Tick total_queue_wait() const;
  std::uint64_t total_hol_stalls() const;
  sim::Tick total_hol_stall_time() const;

  // Test hook: overwrite the first route byte of the next `count` packets
  // `nic_id` injects with an invalid port, so the first switch discards
  // them — a deterministic way to exercise the misroute drop-notice path.
  void CorruptNextRoutes(int nic_id, int count);

 private:
  sim::Simulator& sim_;
  const NetParams& params_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Switch>> switches_;
  struct NicAttachment {
    Endpoint* endpoint = nullptr;
    sim::Simulator* sim = nullptr;  // the NIC's shard; null = fabric's sim
    Link* to_switch = nullptr;   // nic -> fabric
    Link* from_switch = nullptr; // fabric -> nic
    int switch_id = -1;
    int switch_port = -1;
  };
  std::vector<NicAttachment> nics_;
  std::vector<std::unique_ptr<Link>> links_;
  RouteOracle oracle_;
  SwitchShardPlanner switch_planner_;
  // Atomic: drops on different switch shards may notice concurrently.
  std::atomic<std::uint64_t> drop_notices_{0};
  // Per-nic pending route corruptions. Pre-sized on partitioned fabrics
  // (first sharded AddSwitch/AddNic) so concurrent per-nic slot writes
  // never reallocate.
  std::vector<int> corrupt_next_;

  // A link owned by (executing its Send on) `owner`'s shard; metrics bind
  // into `owner`'s registry, merged at dump time.
  Link* NewLink(sim::Simulator& owner);
  // Delivers a switch-dropped packet back to its source NIC's
  // OnPacketDropped (through the event queue, so ordering stays FIFO).
  // `from_sim` is the dropping switch's shard, whose registry takes the
  // fabric.drop_notices count (shard counts sum at merge time).
  void NotifyDrop(sim::Simulator& from_sim, Packet&& packet);
};

// Topology builders create the switch mesh and return the switch/port slot
// where the i-th NIC should attach (the cluster assembly registers the NIC
// endpoints and calls ConnectNic). The general builders — fat tree, ring,
// mesh, plus a text spec — live in topology.h; the two below predate them
// and remain for the paper-scale setups.
struct TopologyPlan {
  struct Slot {
    int switch_id;
    int port;
  };
  std::vector<Slot> nic_slots;
};

// All NICs on one 8-port switch (the paper's setup: 4 PCs on an M2F-SW8).
TopologyPlan BuildSingleSwitch(Fabric& fabric, int max_nics = 8);
// A chain of 8-port switches with `per_switch` NIC slots each (multi-hop
// routes).
TopologyPlan BuildSwitchChain(Fabric& fabric, int num_switches, int per_switch);

}  // namespace vmmc::myrinet
