// The Myrinet switching fabric: point-to-point links and 8-port crossbar
// switches with source (cut-through / wormhole) routing and in-order
// delivery (§3).
//
// Timing model: a link serializes a packet at 160 MB/s and is occupied for
// the serialization time; the head of the packet arrives after the link
// propagation delay and a switch forwards it after its cut-through latency,
// so a multi-hop path pays the serialization cost once plus per-hop
// latencies — the wormhole approximation. A packet is delivered to the
// destination NIC when its tail arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "vmmc/myrinet/packet.h"
#include "vmmc/obs/metrics.h"
#include "vmmc/params.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/status.h"

namespace vmmc::myrinet {

// Anything a link can terminate at. `head_time` is when the call happens;
// `tail_time` is when the last byte will have arrived.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnPacket(Packet packet, sim::Tick tail_time) = 0;

  // Backward drop notification: the fabric tells the *source* NIC when a
  // switch discarded one of its packets (empty or invalid route), so the
  // loss is handled by the sender's recovery path instead of silence. The
  // packet is the dropped one, with the route bytes consumed so far gone.
  virtual void OnPacketDropped(const Packet& packet) { (void)packet; }
};

// Unidirectional link.
class Link {
 public:
  Link(sim::Simulator& sim, const NetParams& params, sim::Rng& rng);

  void set_destination(Endpoint* dst) { dst_ = dst; }
  Endpoint* destination() const { return dst_; }

  // Fabric-assigned id, used to address this link in a FaultPlan
  // (fault.h). Links built outside a Fabric keep -1 and still match
  // wildcard rules.
  void set_id(int id) { id_ = id; }
  int id() const { return id_; }

  // Injects `packet`; honours occupancy (back-to-back packets queue on the
  // wire) and in-order delivery. May corrupt the payload per the injected
  // error rate; the CRC then fails at the receiver, as on real hardware.
  void Send(Packet packet);

  std::uint64_t packets_sent() const { return packets_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  // Total time packets waited for the wire (head-of-line occupancy).
  sim::Tick blocked_time() const { return blocked_; }

  // Wires per-link accounting into registry counters
  // (fabric.link<i>.{packets,bytes,ser_ns,blocked_ns}); unbound links
  // count into internal sinks.
  void BindMetrics(obs::Counter* packets, obs::Counter* bytes,
                   obs::Counter* ser_ns, obs::Counter* blocked_ns);

 private:
  sim::Simulator& sim_;
  const NetParams& params_;
  sim::Rng& rng_;
  Endpoint* dst_ = nullptr;
  int id_ = -1;
  sim::Tick busy_until_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  sim::Tick blocked_ = 0;
  obs::Counter* packets_m_;
  obs::Counter* bytes_m_;
  obs::Counter* ser_ns_m_;
  obs::Counter* blocked_ns_m_;
};

// 8-port (configurable) crossbar switch. Consumes the first route byte to
// select the output port; a packet with an empty or invalid route is
// dropped (counted).
class Switch : public Endpoint {
 public:
  Switch(sim::Simulator& sim, const NetParams& params, int id, int num_ports)
      : sim_(sim), params_(params), id_(id), out_links_(static_cast<std::size_t>(num_ports), nullptr) {}

  int id() const { return id_; }
  int num_ports() const { return static_cast<int>(out_links_.size()); }
  void AttachOutput(int port, Link* link) {
    out_links_.at(static_cast<std::size_t>(port)) = link;
  }
  Link* output(int port) const { return out_links_.at(static_cast<std::size_t>(port)); }

  void OnPacket(Packet packet, sim::Tick tail_time) override;

  // Installed by the Fabric: invoked with every packet this switch
  // discards, so the drop can be propagated back to the source NIC.
  void set_drop_handler(std::function<void(Packet&&)> handler) {
    drop_handler_ = std::move(handler);
  }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t forwarded() const { return forwarded_; }

  void BindMetrics(obs::Counter* forwarded, obs::Counter* dropped) {
    forwarded_m_ = forwarded;
    dropped_m_ = dropped;
  }

 private:
  sim::Simulator& sim_;
  const NetParams& params_;
  int id_;
  std::vector<Link*> out_links_;
  std::function<void(Packet&&)> drop_handler_;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
  obs::Counter* forwarded_m_ = nullptr;
  obs::Counter* dropped_m_ = nullptr;
};

// The fabric: a container of switches, NIC attachment points and links,
// plus the topology graph the mapping phase explores.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, const NetParams& params,
         std::uint64_t error_seed = 0xFAB41Cull)
      : sim_(sim), params_(params), rng_(error_seed) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const NetParams& params() const { return params_; }

  // --- topology construction ---
  int AddSwitch(int num_ports = 8);
  // Registers a NIC endpoint; returns its nic id (0-based, == node id by
  // convention).
  int AddNic(Endpoint* nic);
  // Wires NIC <-> switch port with a link pair.
  Status ConnectNic(int nic_id, int switch_id, int port);
  // Wires switch a, port pa <-> switch b, port pb with a link pair.
  Status ConnectSwitches(int a, int pa, int b, int pb);

  int num_nics() const { return static_cast<int>(nics_.size()); }
  int num_switches() const { return static_cast<int>(switches_.size()); }
  Switch& switch_at(int id) { return *switches_.at(static_cast<std::size_t>(id)); }

  // --- use ---
  // NIC `nic_id` puts a packet on its outgoing link.
  Status Inject(int nic_id, Packet packet);

  // Graph query used by the network-mapping phase (see mapper.h): the
  // shortest source route from one NIC to another, as a sequence of switch
  // output-port bytes. Fails if disconnected.
  Result<Route> ComputeRoute(int src_nic, int dst_nic) const;

  std::uint64_t total_link_packets() const;
  std::uint64_t drop_notices() const { return drop_notices_; }

  // Test hook: overwrite the first route byte of the next `count` packets
  // `nic_id` injects with an invalid port, so the first switch discards
  // them — a deterministic way to exercise the misroute drop-notice path.
  void CorruptNextRoutes(int nic_id, int count);

 private:
  // Graph vertex encoding: 0..S-1 switches, S..S+N-1 NICs.
  struct GraphEdge {
    int to;        // vertex
    int out_port;  // valid when `from` is a switch
  };

  sim::Simulator& sim_;
  const NetParams& params_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Switch>> switches_;
  struct NicAttachment {
    Endpoint* endpoint = nullptr;
    Link* to_switch = nullptr;   // nic -> fabric
    Link* from_switch = nullptr; // fabric -> nic
    int switch_id = -1;
    int switch_port = -1;
  };
  std::vector<NicAttachment> nics_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<GraphEdge>> graph_;  // adjacency by vertex
  std::uint64_t drop_notices_ = 0;
  std::vector<int> corrupt_next_;  // per-nic pending route corruptions

  Link* NewLink();
  // Delivers a switch-dropped packet back to its source NIC's
  // OnPacketDropped (through the event queue, so ordering stays FIFO).
  void NotifyDrop(Packet&& packet);
  int SwitchVertex(int switch_id) const { return switch_id; }
  int NicVertex(int nic_id) const { return num_switches() + nic_id; }
};

// Topology builders create the switch mesh and return the switch/port slot
// where the i-th NIC should attach (the cluster assembly registers the NIC
// endpoints and calls ConnectNic).
struct TopologyPlan {
  struct Slot {
    int switch_id;
    int port;
  };
  std::vector<Slot> nic_slots;
};

// All NICs on one 8-port switch (the paper's setup: 4 PCs on an M2F-SW8).
TopologyPlan BuildSingleSwitch(Fabric& fabric, int max_nics = 8);
// A chain of switches with `per_switch` NIC slots each (multi-hop routes).
TopologyPlan BuildSwitchChain(Fabric& fabric, int num_switches, int per_switch);

}  // namespace vmmc::myrinet
