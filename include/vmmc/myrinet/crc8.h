// CRC-8 as computed by the Myrinet link hardware (§3): "On sending, the
// 8-bit CRC is computed by hardware and is appended to the packet. On a
// packet arrival, CRC hardware computes the CRC of the incoming packet and
// compares it with the received CRC."
//
// Polynomial: x^8 + x^2 + x + 1 (0x07), the CRC-8/ATM-HEC generator.
#pragma once

#include <cstdint>
#include <span>

namespace vmmc::myrinet {

// Table-driven CRC-8 over `data`, initial value 0.
std::uint8_t Crc8(std::span<const std::uint8_t> data);

// Incremental form for streaming use.
std::uint8_t Crc8Update(std::uint8_t crc, std::span<const std::uint8_t> data);

}  // namespace vmmc::myrinet
