// Minimal OS kernel model: user processes, interrupts dispatched to
// loadable-driver handlers, POSIX-style signals, and the page pinning
// service the VMMC driver relies on.
//
// Matches the paper's software-structure claims (§5.1): all new kernel
// functionality lives in a loadable device driver — a virtual-to-physical
// translation service and signal-based notification delivery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/mem/address_space.h"
#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/status.h"

namespace vmmc::host {

// Signal numbers used by the VMMC driver.
constexpr int kSigVmmcNotify = 40;  // SIGRTMIN-style user signal

class UserProcess {
 public:
  // A signal handler runs as a coroutine in the user process.
  using SignalHandler = std::function<sim::Process(int signum)>;

  UserProcess(int pid, std::string name, mem::PhysicalMemory& pm)
      : pid_(pid), name_(std::move(name)), address_space_(pm) {}

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }
  mem::AddressSpace& address_space() { return address_space_; }
  const mem::AddressSpace& address_space() const { return address_space_; }

  void SetSignalHandler(int signum, SignalHandler handler) {
    handlers_[signum] = std::move(handler);
  }
  const SignalHandler* FindSignalHandler(int signum) const {
    auto it = handlers_.find(signum);
    return it == handlers_.end() ? nullptr : &it->second;
  }

 private:
  int pid_;
  std::string name_;
  mem::AddressSpace address_space_;
  std::unordered_map<int, SignalHandler> handlers_;
};

class Kernel {
 public:
  using IrqHandler = std::function<sim::Process()>;

  Kernel(sim::Simulator& sim, const HostParams& params, mem::PhysicalMemory& pm)
      : sim_(sim), params_(params), pm_(pm) {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulator& simulator() { return sim_; }
  mem::PhysicalMemory& physical_memory() { return pm_; }

  // --- processes ---
  UserProcess& CreateProcess(const std::string& name) {
    processes_.push_back(std::make_unique<UserProcess>(next_pid_++, name, pm_));
    return *processes_.back();
  }
  UserProcess* FindProcess(int pid) {
    for (auto& p : processes_) {
      if (p->pid() == pid) return p.get();
    }
    return nullptr;
  }
  std::size_t process_count() const { return processes_.size(); }

  // --- interrupts (device -> driver) ---
  void RegisterIrqHandler(int irq, IrqHandler handler) {
    irq_handlers_[irq] = std::move(handler);
  }
  // Raises IRQ `irq`: after the interrupt-entry cost the registered driver
  // handler runs as a kernel coroutine.
  void RaiseIrq(int irq) {
    ++interrupts_taken_;
    sim_.Spawn(RunIrq(irq));
  }
  std::uint64_t interrupts_taken() const { return interrupts_taken_; }

  // --- signals (driver -> user handler), used for notifications ---
  Status PostSignal(int pid, int signum) {
    UserProcess* proc = FindProcess(pid);
    if (proc == nullptr) return NotFound("no such pid");
    ++signals_posted_;
    sim_.Spawn(RunSignal(*proc, signum));
    return OkStatus();
  }
  std::uint64_t signals_posted() const { return signals_posted_; }

  // --- driver services (the paper's loadable-module additions, §5.1) ---
  // Locks pages in memory so a device may DMA to/from them.
  Status PinUserPages(UserProcess& proc, mem::VirtAddr va, std::uint64_t len) {
    return proc.address_space().Pin(va, len);
  }
  Status UnpinUserPages(UserProcess& proc, mem::VirtAddr va, std::uint64_t len) {
    return proc.address_space().Unpin(va, len);
  }
  // Virtual-to-physical translation for a pinned user page.
  Result<mem::PhysAddr> TranslatePinned(UserProcess& proc, mem::VirtAddr va) {
    return proc.address_space().TranslatePinned(va);
  }

 private:
  sim::Process RunIrq(int irq) {
    co_await sim_.Delay(params_.interrupt_entry);
    auto it = irq_handlers_.find(irq);
    if (it != irq_handlers_.end()) co_await it->second();
  }

  sim::Process RunSignal(UserProcess& proc, int signum) {
    co_await sim_.Delay(params_.signal_delivery);
    const UserProcess::SignalHandler* h = proc.FindSignalHandler(signum);
    if (h != nullptr) co_await (*h)(signum);
  }

  sim::Simulator& sim_;
  const HostParams& params_;
  mem::PhysicalMemory& pm_;
  std::vector<std::unique_ptr<UserProcess>> processes_;
  std::unordered_map<int, IrqHandler> irq_handlers_;
  int next_pid_ = 100;
  std::uint64_t interrupts_taken_ = 0;
  std::uint64_t signals_posted_ = 0;
};

}  // namespace vmmc::host
