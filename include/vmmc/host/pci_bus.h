// PCI bus model.
//
// Two access paths, as on the paper's platform (§3, §5.2):
//  * memory-mapped I/O (PIO): fixed per-word costs measured in the paper
//    (read 0.422 us, write 0.121 us); modelled as uncontended since the
//    paper's PIO constants were measured end-to-end under load;
//  * DMA between host memory and LANai SRAM: exclusive bus ownership for
//    the duration of the burst (this contention is what makes
//    bidirectional VMMC traffic top out below one-way traffic, §5.3).
#pragma once

#include <cstdint>

#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"

namespace vmmc::host {

class PciBus {
 public:
  PciBus(sim::Simulator& sim, const PciParams& params)
      : sim_(sim), params_(params), bus_(sim, 1) {}

  const PciParams& params() const { return params_; }

  sim::Tick PioReadCost(int words = 1) const { return words * params_.pio_read; }
  sim::Tick PioWriteCost(int words = 1) const { return words * params_.pio_write; }

  // Programmed I/O across the bus; the calling coroutine is busy.
  sim::Process PioRead(int words) { co_await sim_.Delay(PioReadCost(words)); }
  sim::Process PioWrite(int words) { co_await sim_.Delay(PioWriteCost(words)); }

  // One DMA burst of `bytes` (either direction). Waits for the bus, then
  // holds it for dma_init + bytes/peak.
  sim::Process Dma(std::uint64_t bytes) {
    auto lock = co_await sim::ScopedAcquire(bus_);
    co_await sim_.Delay(params_.dma_init +
                        sim::NsForBytes(bytes, params_.dma_peak_mb_s));
    dma_bytes_ += bytes;
    ++dma_count_;
  }

  // Duration of an uncontended DMA burst.
  sim::Tick DmaCost(std::uint64_t bytes) const {
    return params_.dma_init + sim::NsForBytes(bytes, params_.dma_peak_mb_s);
  }

  std::uint64_t dma_bytes() const { return dma_bytes_; }
  std::uint64_t dma_count() const { return dma_count_; }

 private:
  sim::Simulator& sim_;
  const PciParams& params_;
  sim::Semaphore bus_;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t dma_count_ = 0;
};

}  // namespace vmmc::host
