// One PC: physical memory, CPU, PCI bus and kernel, assembled. The network
// interface card plugs into the machine's PCI bus (see lanai/nic_card.h);
// the assembly of machine + NIC + fabric into a cluster happens in
// vmmc/cluster.h.
#pragma once

#include <cstdint>

#include "vmmc/host/host_cpu.h"
#include "vmmc/host/kernel.h"
#include "vmmc/host/pci_bus.h"
#include "vmmc/mem/physical_memory.h"
#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::host {

class Machine {
 public:
  // `mem_bytes` defaults to a tractable 16 MB (the paper's PCs had 64 MB);
  // the scatter seed is derived from the node id so each node fragments
  // its frames differently.
  Machine(sim::Simulator& sim, const Params& params, int node_id,
          std::uint64_t mem_bytes = 16ull * 1024 * 1024)
      : node_id_(node_id),
        memory_(mem_bytes, /*scatter_seed=*/0x5EED0000u + static_cast<std::uint64_t>(node_id)),
        cpu_(sim, params.host),
        pci_(sim, params.pci),
        kernel_(sim, params.host, memory_) {}

  int node_id() const { return node_id_; }
  mem::PhysicalMemory& memory() { return memory_; }
  HostCpu& cpu() { return cpu_; }
  PciBus& pci() { return pci_; }
  Kernel& kernel() { return kernel_; }

 private:
  int node_id_;
  mem::PhysicalMemory memory_;
  HostCpu cpu_;
  PciBus pci_;
  Kernel kernel_;
};

}  // namespace vmmc::host
