// Host CPU cost model (166 MHz Pentium). Besides converting work into
// simulated time, it counts bcopy traffic: the paper's zero-copy claim is
// verified in tests by asserting that the VMMC receive path performs no
// host-CPU copies, while vRPC's compatibility mode performs exactly one.
#pragma once

#include <cstdint>

#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::host {

class HostCpu {
 public:
  HostCpu(sim::Simulator& sim, const HostParams& params)
      : sim_(sim), params_(params) {}

  const HostParams& params() const { return params_; }

  // Busy-executes for `t`.
  sim::Process Charge(sim::Tick t) { co_await sim_.Delay(t); }

  // Cost of copying `bytes` with the library bcopy (§5.4: ~50 MB/s).
  sim::Tick BcopyCost(std::uint64_t bytes) const {
    return params_.bcopy_call + sim::NsForBytes(bytes, params_.bcopy_mb_s);
  }

  // Copies `bytes` at library-bcopy speed and records the copy.
  sim::Process Bcopy(std::uint64_t bytes) {
    bcopy_bytes_ += bytes;
    ++bcopy_calls_;
    co_await sim_.Delay(BcopyCost(bytes));
  }

  std::uint64_t bcopy_bytes() const { return bcopy_bytes_; }
  std::uint64_t bcopy_calls() const { return bcopy_calls_; }

 private:
  sim::Simulator& sim_;
  const HostParams& params_;
  std::uint64_t bcopy_bytes_ = 0;
  std::uint64_t bcopy_calls_ = 0;
};

}  // namespace vmmc::host
