// The Ethernet that connects the PCs besides Myrinet (§5.1). The VMMC
// daemons use it as their control channel for export/import matching
// (§4.1), and the SunRPC/UDP baseline in src/vrpc runs over it.
//
// Model: a shared 10 Mb/s segment; a frame owns the medium for its
// serialization time; messages larger than the MTU are fragmented and pay
// per-frame overhead. Delivery is per-node mailboxes.
//
// Parallel partitioning: the shared Segment is a logical process of its
// own — medium arbitration is inherently serial — while each Interface
// lives on its node's shard. On a partitioned cluster SendTo completes at
// handoff to the segment (a non-blocking send; the wire time is modelled
// on the segment's shard), and delivery crosses back to the destination
// node's shard. Single-simulator clusters keep the fully synchronous
// behaviour below, bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"
#include "vmmc/util/status.h"

namespace vmmc::ethernet {

struct Datagram {
  int src_node = -1;
  int dst_node = -1;
  std::uint16_t dst_port = 0;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> payload;
};

class Segment;

// One node's Ethernet interface; datagrams arrive demultiplexed by port.
class Interface {
 public:
  Interface(sim::Simulator& sim, Segment& segment, int node_id)
      : sim_(sim), segment_(segment), node_id_(node_id) {}

  int node_id() const { return node_id_; }
  // The node shard this interface executes on (== the segment's simulator
  // unless the cluster is partitioned).
  sim::Simulator& simulator() const { return sim_; }

  // Binds a port; returns the mailbox datagrams to that port land in.
  Result<sim::Mailbox<Datagram>*> Bind(std::uint16_t port);
  Status Unbind(std::uint16_t port);

  // Sends a datagram (UDP-like: unreliable in principle, reliable in this
  // model). Charges the kernel stack cost to the caller and the medium
  // serialization to the segment.
  sim::Process SendTo(int dst_node, std::uint16_t dst_port,
                      std::uint16_t src_port, std::vector<std::uint8_t> payload);

  // Called by the segment on delivery.
  void Deliver(Datagram dgram);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_no_port() const { return dropped_no_port_; }

 private:
  sim::Simulator& sim_;
  Segment& segment_;
  int node_id_;
  std::unordered_map<std::uint16_t, std::unique_ptr<sim::Mailbox<Datagram>>> ports_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_port_ = 0;
};

// The shared segment.
class Segment {
 public:
  Segment(sim::Simulator& sim, const EthernetParams& params)
      : sim_(sim), params_(params), medium_(sim, 1) {}
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  const EthernetParams& params() const { return params_; }
  sim::Simulator& simulator() const { return sim_; }

  // The second form places the interface on `sim` (the node's shard on a
  // partitioned cluster); the first uses the segment's own simulator.
  Interface& AddInterface(int node_id);
  Interface& AddInterface(int node_id, sim::Simulator& sim);
  Interface* FindInterface(int node_id);

  // Transmits `dgram` on the shared medium: acquires it, holds it for the
  // fragment serialization time, then delivers. In-order per segment.
  sim::Process Transmit(Datagram dgram);

 private:
  sim::Simulator& sim_;
  const EthernetParams& params_;
  sim::Semaphore medium_;
  std::vector<std::unique_ptr<Interface>> interfaces_;
};

}  // namespace vmmc::ethernet
