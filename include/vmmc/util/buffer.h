// Ref-counted, pooled byte buffer with copy-on-write semantics.
//
// Payload bytes in the simulator are written once (at the source NIC) and
// then handed from queue to queue: per switch hop, into the go-back-N
// retx-pool, across retransmits. Buffer makes every one of those handoffs
// a reference bump instead of a std::vector deep copy, and recycles the
// underlying storage through a size-class pool so steady-state traffic
// performs no heap allocation at all.
//
// Semantics:
//  - Copying a Buffer shares the bytes (O(1) ref bump).
//  - All mutation goes through MutableData()/resize()/assign(), which
//    un-share first (copy-on-write) — a fault rule flipping a bit in one
//    in-flight copy of a packet never corrupts the retx-pool's copy.
//  - Read access is const-only: there is no mutable operator[]/begin/end,
//    so a read like `payload[0]` can never trigger an accidental unshare.
//  - Thread safety matches the parallel engine's needs (sim/parallel.h):
//    ref counts are atomic (a packet's payload crosses LP shards by
//    reference), and the recycling pool is thread-local so steady-state
//    alloc/free takes no lock. A block released on a different thread
//    than it was allocated on simply joins the releasing thread's pool.
//    Distinct Buffer objects may be used from distinct threads; a single
//    Buffer object is still single-owner, like any value type.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <vector>

namespace vmmc::util {

class Buffer {
 public:
  // Pool observability (see buffer_test.cpp and the allocation-count
  // tests): cumulative counters since thread start. The pool — and these
  // stats — are thread-local; live_blocks is signed because a block
  // allocated on one thread may be released on another, driving one
  // thread's count negative and the other's high (the sum stays exact).
  struct PoolStats {
    std::uint64_t allocs = 0;       // block requests (any source)
    std::uint64_t pool_hits = 0;    // ... served from a free list
    std::uint64_t heap_allocs = 0;  // ... served by operator new
    std::uint64_t unshares = 0;     // copy-on-write deep copies
    std::int64_t live_blocks = 0;   // blocks currently referenced
  };

  Buffer() noexcept = default;

  // Implicit: vectors are how payload bytes are built in tests and
  // call sites predating Buffer; the conversion copies once.
  Buffer(const std::vector<std::uint8_t>& v)
      : Buffer(std::span<const std::uint8_t>(v)) {}
  Buffer(std::initializer_list<std::uint8_t> il)
      : Buffer(std::span<const std::uint8_t>(il.begin(), il.size())) {}
  explicit Buffer(std::span<const std::uint8_t> bytes) {
    if (!bytes.empty()) {
      block_ = Alloc(bytes.size());
      size_ = bytes.size();
      std::memcpy(block_->bytes(), bytes.data(), bytes.size());
    }
  }
  // Zero-filled buffer of `n` bytes.
  explicit Buffer(std::size_t n) {
    if (n != 0) {
      block_ = Alloc(n);
      size_ = n;
      std::memset(block_->bytes(), 0, n);
    }
  }
  // A buffer whose `n` bytes are uninitialized — for callers about to
  // overwrite the whole thing (DMA targets, encoders).
  static Buffer Uninitialized(std::size_t n) {
    Buffer b;
    if (n != 0) {
      b.block_ = Alloc(n);
      b.size_ = n;
    }
    return b;
  }

  Buffer(const Buffer& other) noexcept
      : block_(other.block_), size_(other.size_) {
    if (block_ != nullptr) {
      block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Buffer& operator=(const Buffer& other) noexcept {
    if (other.block_ != nullptr) {
      other.block_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    Unref();
    block_ = other.block_;
    size_ = other.size_;
    return *this;
  }
  Buffer(Buffer&& other) noexcept : block_(other.block_), size_(other.size_) {
    other.block_ = nullptr;
    other.size_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Unref();
      block_ = other.block_;
      size_ = other.size_;
      other.block_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~Buffer() { Unref(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const {
    return block_ != nullptr ? block_->bytes() : nullptr;
  }
  const std::uint8_t& operator[](std::size_t i) const {
    assert(i < size_);
    return block_->bytes()[i];
  }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size_; }
  operator std::span<const std::uint8_t>() const { return {data(), size_}; }

  // True if no other Buffer shares the bytes (mutation won't copy).
  // Acquire pairs with the release decrement in Unref: seeing refs == 1
  // also sees every write the former co-owner made before letting go.
  bool unique() const {
    return block_ == nullptr ||
           block_->refs.load(std::memory_order_acquire) == 1;
  }

  // Write access to the bytes; un-shares first. nullptr when empty.
  std::uint8_t* MutableData() {
    if (block_ == nullptr) return nullptr;
    Unshare(size_);
    return block_->bytes();
  }

  // Grows zero-filled / shrinks. Shrinking never reallocates or copies.
  void resize(std::size_t n) {
    if (n <= size_) {
      size_ = n;
      if (n == 0) {
        Unref();
        block_ = nullptr;
      }
      return;
    }
    const std::size_t old = size_;
    if (block_ == nullptr) {
      block_ = Alloc(n);
    } else if (!unique() || block_->capacity < n) {
      Unshare(n);
    }
    size_ = n;
    std::memset(block_->bytes() + old, 0, n - old);
  }

  void assign(std::span<const std::uint8_t> bytes) {
    // Fresh content: no need to preserve old bytes, so drop a shared or
    // undersized block instead of copy-on-write.
    Reserve(bytes.size());
    size_ = bytes.size();
    if (!bytes.empty()) {
      std::memcpy(block_->bytes(), bytes.data(), bytes.size());
    }
  }
  void assign(std::size_t n, std::uint8_t value) {
    Reserve(n);
    size_ = n;
    if (n != 0) std::memset(block_->bytes(), value, n);
  }

  void clear() {
    Unref();
    block_ = nullptr;
    size_ = 0;
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator==(const Buffer& a, const std::vector<std::uint8_t>& b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }
  friend bool operator==(const std::vector<std::uint8_t>& a, const Buffer& b) {
    return b == a;
  }

  static const PoolStats& pool_stats() { return pool().stats; }

 private:
  // Block header; payload bytes follow in the same allocation. `cls` is
  // the size-class index, or kNoClass for exact-size blocks above the
  // largest class (freed to the heap, not pooled). refs is the only field
  // touched concurrently (shared payloads crossing shard boundaries).
  struct Block {
    std::atomic<std::uint32_t> refs;
    std::uint32_t cls;
    std::size_t capacity;
    Block* next_free;
    std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  };

  static constexpr std::size_t kMinCapacity = 64;
  static constexpr std::size_t kMaxPooled = 65536;
  static constexpr std::uint32_t kNumClasses = 11;  // 64, 128, ..., 65536
  static constexpr std::uint32_t kNoClass = ~0u;

  struct Pool {
    Block* free_lists[kNumClasses] = {};
    PoolStats stats;
    // Worker threads are short-lived (one Run* call each); without this
    // their pooled blocks would accumulate across runs.
    ~Pool() {
      for (Block* b : free_lists) {
        while (b != nullptr) {
          Block* next = b->next_free;
          FreeHeapBlock(b);
          b = next;
        }
      }
    }
  };
  // Thread-local: lock-free recycling for shard worker threads.
  static Pool& pool() {
    thread_local Pool p;
    return p;
  }

  static Block* Alloc(std::size_t n) {
    Pool& p = pool();
    ++p.stats.allocs;
    ++p.stats.live_blocks;
    if (n <= kMaxPooled) {
      // bit_ceil is only defined for representable results; guard it
      // behind the size check so absurd n goes straight to the exact path.
      const std::size_t capacity =
          std::bit_ceil(n < kMinCapacity ? kMinCapacity : n);
      const auto cls = static_cast<std::uint32_t>(
          std::countr_zero(capacity) - std::countr_zero(kMinCapacity));
      if (Block* b = p.free_lists[cls]; b != nullptr) {
        p.free_lists[cls] = b->next_free;
        ++p.stats.pool_hits;
        b->refs.store(1, std::memory_order_relaxed);
        return b;
      }
      ++p.stats.heap_allocs;
      auto* b = static_cast<Block*>(::operator new(sizeof(Block) + capacity));
      b->refs.store(1, std::memory_order_relaxed);
      b->cls = cls;
      b->capacity = capacity;
      return b;
    }
    ++p.stats.heap_allocs;
    auto* b = static_cast<Block*>(::operator new(sizeof(Block) + n));
    b->refs.store(1, std::memory_order_relaxed);
    b->cls = kNoClass;
    b->capacity = n;
    return b;
  }

  static void Release(Block* b) {
    Pool& p = pool();
    --p.stats.live_blocks;
    if (b->cls != kNoClass) {
      b->next_free = p.free_lists[b->cls];
      p.free_lists[b->cls] = b;
    } else {
      FreeHeapBlock(b);
    }
  }

  // Out of line (buffer.cpp) so the delete stays opaque to caller TUs:
  // GCC's -Wuse-after-free cannot see that the ref count guarantees the
  // deleting Unref is the last one, and would warn on every shared Buffer.
  static void FreeHeapBlock(Block* b);

  void Unref() {
    // acq_rel: the release half orders this owner's writes before the
    // drop; the acquire half (taken by whoever hits zero) orders the
    // block's recycling after every other owner's writes.
    if (block_ != nullptr &&
        block_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Release(block_);
    }
  }

  // Ensures block_ is an unshared block of capacity >= n holding the
  // first size_ bytes of the current content.
  void Unshare(std::size_t n) {
    if (unique() && block_->capacity >= n) return;
    ++pool().stats.unshares;
    Block* fresh = Alloc(n);
    std::memcpy(fresh->bytes(), block_->bytes(), size_);
    Unref();
    block_ = fresh;
  }

  // Ensures block_ is an unshared block of capacity >= n; content is
  // NOT preserved (the caller overwrites it).
  void Reserve(std::size_t n) {
    if (block_ != nullptr && unique() && block_->capacity >= n) return;
    Unref();
    block_ = n != 0 ? Alloc(n) : nullptr;
  }

  Block* block_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace vmmc::util
