// Minimal leveled logger. Logging in the simulator is for debugging and
// tracing only; benches and tests run with logging off by default.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace vmmc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global log threshold. Messages below it are discarded cheaply.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
LogLevel ParseLogLevel(std::string_view name);

// Simulation-time log context. When a clock is registered (the Simulator
// registers its own on construction), every EmitLog line carries the
// current simulated nanosecond — "[@123456ns]" — so log lines correlate
// with trace events. The timestamp is simulated, never wall clock, so
// logs stay deterministic. Pass nullptr to clear.
void SetLogSimClock(const std::int64_t* now);
const std::int64_t* GetLogSimClock();

namespace detail {
void EmitLog(LogLevel level, std::string_view component, const std::string& msg);

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { EmitLog(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace vmmc

// Usage: VMMC_LOG(kInfo, "lcp") << "send queue " << qid << " drained";
#define VMMC_LOG(level, component)                              \
  if (::vmmc::LogLevel::level < ::vmmc::GetLogLevel()) {        \
  } else                                                        \
    ::vmmc::detail::LogLine(::vmmc::LogLevel::level, component)
