// Lightweight status / expected types used across the VMMC codebase.
//
// We avoid exceptions on hot simulated paths (a rejected send is a normal
// protocol outcome, not an exceptional one), so fallible operations return
// Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace vmmc {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kAlreadyExists,
  kInternal,
};

// Human-readable name for an ErrorCode ("OK", "PERMISSION_DENIED", ...).
std::string_view ErrorCodeName(ErrorCode code);

// A status word: either OK or an error code plus a message.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "PERMISSION_DENIED: not allowed to import".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Result<T>: a value or an error Status. Asserts on misuse.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vmmc
