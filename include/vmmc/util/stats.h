// Statistics helpers used by benches and tests: online moments, fixed-bucket
// histograms, and a small table printer that renders paper-style rows.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vmmc {

// Online mean / min / max / variance (Welford).
class OnlineStats {
 public:
  void Add(double x);
  // Folds another accumulator in (Chan's parallel-Welford combination);
  // the result is as if every sample of both had been Add'ed here.
  void MergeFrom(const OnlineStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;         // population variance (0 when empty)
  double sample_variance() const;  // Bessel-corrected (0 for < 2 samples)
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram with caller-supplied bucket upper bounds (last bucket catches
// overflow). Used by latency-distribution tests.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Add(double x);
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  // Linear-interpolated quantile estimate in [0,1].
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;       // ascending; implicit +inf at the end
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 buckets
  std::uint64_t total_ = 0;
};

// Column-aligned table printer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders with a header rule, columns padded to the widest cell.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` fractional digits ("9.80").
std::string FormatDouble(double v, int digits);
// "4", "1K", "64K", "1M" style size labels used on the paper's axes.
std::string FormatSize(std::uint64_t bytes);

}  // namespace vmmc
