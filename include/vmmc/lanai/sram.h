// LANai on-board SRAM (256 KB on the M2F-PCI32, §3). It holds the LANai
// control program, per-process send queues, outgoing page tables and
// software TLBs, and the network staging buffers — so SRAM capacity is the
// resource that bounds how many processes/imports a NIC can serve (§4.4,
// §6). This allocator enforces those bounds; region contents are modelled
// by their owning components.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "vmmc/util/status.h"

namespace vmmc::lanai {

class Sram {
 public:
  explicit Sram(std::uint32_t bytes) : size_(bytes) {
    free_.emplace(0, bytes);
  }
  Sram(const Sram&) = delete;
  Sram& operator=(const Sram&) = delete;

  std::uint32_t size() const { return size_; }
  std::uint32_t used_bytes() const { return used_; }
  std::uint32_t free_bytes() const { return size_ - used_; }

  // First-fit allocation; `name` identifies the region in diagnostics.
  Result<std::uint32_t> Allocate(const std::string& name, std::uint32_t bytes);
  Status Free(std::uint32_t offset);

  // Name of the region at `offset` (empty if none) — diagnostics/tests.
  std::string RegionName(std::uint32_t offset) const;
  std::size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    std::string name;
    std::uint32_t bytes;
  };

  std::uint32_t size_;
  std::uint32_t used_ = 0;
  std::map<std::uint32_t, std::uint32_t> free_;  // offset -> length
  std::map<std::uint32_t, Region> regions_;      // offset -> region
};

}  // namespace vmmc::lanai
