// The Myrinet PCI network interface (M2F-PCI32, §3): a 33 MHz LANai 4.1
// control processor, 256 KB SRAM, and three DMA engines — two between the
// network and SRAM (tx, rx) and one between SRAM and host memory over PCI.
// The LANai runs a control program (LCP); which LCP is loaded determines
// the interface's protocol (network mapping, VMMC, or one of the baseline
// message layers in src/compat).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/lanai/sram.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/obs/metrics.h"
#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"
#include "vmmc/util/status.h"

namespace vmmc::lanai {

// LANai processor cost accounting (33 MHz; §3).
class LanaiCpu {
 public:
  LanaiCpu(sim::Simulator& sim, const LanaiParams& params)
      : sim_(sim), params_(params) {}

  const LanaiParams& params() const { return params_; }

  // Executes LCP work costing `t`.
  sim::Process Exec(sim::Tick t) {
    busy_ += t;
    if (exec_ns_m_ != nullptr) exec_ns_m_->Inc(static_cast<std::uint64_t>(t));
    co_await sim_.Delay(t);
  }

  sim::Tick busy_time() const { return busy_; }

  // Mirrors busy time into a registry counter (node<N>.lanai.exec_ns).
  void BindMetrics(obs::Counter* exec_ns) { exec_ns_m_ = exec_ns; }

 private:
  sim::Simulator& sim_;
  const LanaiParams& params_;
  sim::Tick busy_ = 0;
  obs::Counter* exec_ns_m_ = nullptr;
};

// A packet as handed to the LCP after the receive hardware ran its CRC
// check (§3: mismatches are reported, not corrected).
struct ReceivedPacket {
  myrinet::Packet packet;
  bool crc_ok = true;
};

class NicCard;

// A LANai control program. Loaded onto a NIC and run as a coroutine.
class Lcp {
 public:
  virtual ~Lcp() = default;
  virtual sim::Process Run(NicCard& nic) = 0;

  // The fabric reported that a packet this NIC injected was discarded at
  // a switch (misroute / empty route). Called from the event queue, not
  // from LCP coroutine context; default: ignore, as the paper's LCP does.
  virtual void OnDropNotice(const myrinet::Packet& packet) { (void)packet; }
};

class NicCard : public myrinet::Endpoint {
 public:
  NicCard(sim::Simulator& sim, const Params& params, host::Machine& machine,
          myrinet::Fabric& fabric)
      : sim_(sim),
        params_(params),
        machine_(machine),
        fabric_(fabric),
        sram_(params.lanai.sram_bytes),
        cpu_(sim, params.lanai),
        rx_queue_(sim),
        work_tokens_(sim, 0),
        host_dma_engine_(sim, 1),
        net_tx_engine_(sim, 1) {}

  sim::Simulator& simulator() { return sim_; }
  const Params& params() const { return params_; }
  host::Machine& machine() { return machine_; }
  myrinet::Fabric& fabric() { return fabric_; }
  Sram& sram() { return sram_; }
  LanaiCpu& cpu() { return cpu_; }
  int nic_id() const { return nic_id_; }

  // Registers with the fabric at the given switch slot.
  Status AttachToFabric(int switch_id, int port);

  // Loads and starts a control program (replacing any previous one is not
  // supported mid-flight; the mapping LCP finishes before the VMMC LCP is
  // loaded, as in §4.3).
  void LoadLcp(std::unique_ptr<Lcp> lcp);

  // ---- network side ----
  // Endpoint: head arrival of a packet destined for this NIC.
  void OnPacket(myrinet::Packet packet, sim::Tick tail_time,
                myrinet::Link* from) override;

  // Endpoint: a packet this NIC injected was dropped at a switch; relayed
  // to the loaded LCP so its recovery path (if any) can react.
  void OnPacketDropped(const myrinet::Packet& packet) override;

  // Transmit: holds the net-tx DMA engine for init + serialization, then
  // injects into the fabric. `extra_tx_cost` models per-packet LCP work
  // that must happen with the engine held.
  sim::Process NetSend(myrinet::Packet packet);

  // Received packets, in arrival order, for the LCP.
  sim::Mailbox<ReceivedPacket>& rx_queue() { return rx_queue_; }
  std::uint64_t crc_errors() const { return crc_errors_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

  // ---- host side ----
  // DMA between host physical memory and LANai SRAM buffers. Timing goes
  // through the machine's PCI bus; bytes move for real so end-to-end data
  // integrity is testable.
  sim::Process HostDmaRead(mem::PhysAddr src, std::vector<std::uint8_t>& out,
                           std::size_t len);
  // Zero-copy variant: DMAs straight into caller-owned storage (e.g. the
  // data region of a pooled payload buffer) — no intermediate vector.
  sim::Process HostDmaRead(mem::PhysAddr src, std::span<std::uint8_t> out);
  sim::Process HostDmaWrite(mem::PhysAddr dst, std::span<const std::uint8_t> in);

  // Raises the NIC's interrupt line (driver service requests: software-TLB
  // miss, notification delivery; §4.5).
  void RaiseHostInterrupt();
  static constexpr int kIrq = 11;

  // ---- LCP wake-up ----
  // Work tokens: the host rings after posting a send request; the rx path
  // rings on packet arrival. The LCP main loop blocks on AwaitWork.
  void NotifyWork() { work_tokens_.Release(); }
  auto AwaitWork() { return work_tokens_.Acquire(); }
  bool work_pending() const { return work_tokens_.available() > 0; }
  // Consumes one pending token without blocking (an LCP that drained a
  // packet directly can retire the token that arrival posted, so the
  // token level keeps reflecting undrained work).
  bool TryConsumeWorkToken() { return work_tokens_.TryAcquire(); }

 private:
  sim::Simulator& sim_;
  const Params& params_;
  host::Machine& machine_;
  myrinet::Fabric& fabric_;
  Sram sram_;
  LanaiCpu cpu_;
  int nic_id_ = -1;

  std::unique_ptr<Lcp> lcp_;
  sim::Mailbox<ReceivedPacket> rx_queue_;
  sim::Semaphore work_tokens_;
  sim::Semaphore host_dma_engine_;
  sim::Semaphore net_tx_engine_;

  std::uint64_t crc_errors_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_sent_ = 0;

  // Observability: bound when the NIC learns its id (AttachToFabric);
  // a NIC never attached to a fabric (unit tests) reports nothing.
  struct EngineObs {
    obs::Counter* ops = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* busy_ns = nullptr;
    obs::Gauge* utilization = nullptr;
    int track = -1;
  };
  void BindObs();
  void FinishEngineOp(EngineObs& e, sim::Tick t0, std::uint64_t bytes);
  EngineObs host_dma_obs_;
  EngineObs net_tx_obs_;
  obs::Counter* packets_sent_m_ = nullptr;
  obs::Counter* packets_received_m_ = nullptr;
  obs::Counter* crc_errors_m_ = nullptr;
  bool obs_bound_ = false;
};

}  // namespace vmmc::lanai
