// A bare two-or-more-node Myrinet testbed (machines + NICs + switch, no
// VMMC): the common substrate for the §7 baseline message layers, which
// each load their own LANai control program.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/myrinet/topology.h"
#include "vmmc/params.h"

namespace vmmc::compat {

class Testbed {
 public:
  // Bare machines + NICs on a single 8-port crossbar (num_nodes <= 8) or,
  // with the second constructor, on any shape topology.h can build.
  Testbed(sim::Simulator& sim, const Params& params, int num_nodes = 2)
      : Testbed(sim, params,
                [num_nodes] {
                  myrinet::TopologyConfig cfg;
                  cfg.kind = myrinet::TopologyKind::kSingleSwitch;
                  cfg.num_nodes = num_nodes;
                  return cfg;
                }()) {}

  Testbed(sim::Simulator& sim, const Params& params,
          const myrinet::TopologyConfig& topology)
      : sim_(sim), params_(params) {
    fabric_ = std::make_unique<myrinet::Fabric>(sim_, params_.net);
    auto built = myrinet::BuildTopology(*fabric_, topology);
    assert(built.ok() && "topology cannot host the requested node count");
    myrinet::TopologyPlan plan = std::move(built).value();
    const int num_nodes = topology.num_nodes;
    for (int i = 0; i < num_nodes; ++i) {
      machines_.push_back(std::make_unique<host::Machine>(sim_, params_, i));
      nics_.push_back(std::make_unique<lanai::NicCard>(sim_, params_,
                                                       *machines_.back(), *fabric_));
      Status s = nics_.back()->AttachToFabric(
          plan.nic_slots[static_cast<std::size_t>(i)].switch_id,
          plan.nic_slots[static_cast<std::size_t>(i)].port);
      assert(s.ok());
      (void)s;
    }
  }

  sim::Simulator& simulator() { return sim_; }
  const Params& params() const { return params_; }
  myrinet::Fabric& fabric() { return *fabric_; }
  host::Machine& machine(int i) { return *machines_.at(static_cast<std::size_t>(i)); }
  lanai::NicCard& nic(int i) { return *nics_.at(static_cast<std::size_t>(i)); }
  int num_nodes() const { return static_cast<int>(nics_.size()); }

  myrinet::Route RouteTo(int src, int dst) {
    return fabric_->ComputeRoute(src, dst).value();
  }

 private:
  sim::Simulator& sim_;
  Params params_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<host::Machine>> machines_;
  std::vector<std::unique_ptr<lanai::NicCard>> nics_;
};

}  // namespace vmmc::compat
