// A Fast Messages 2.0-like layer (§7): user-level messaging that favours
// low latency over bandwidth.
//
// Characteristics modelled from the paper's description:
//  * no protection — one user process per node;
//  * programmed I/O on the sending side (no pinning of send pages): the
//    host copies data to the interface in 128-byte frames, which caps
//    send bandwidth at the PIO write rate (~33 MB/s at 0.121 us/word);
//  * a streaming interface: messages are sequences of frames with a
//    handler id, supporting gather/scatter;
//  * receiver side: DMA into pinned receive-ring buffers, a polling
//    "extract" call runs the handler, which copies the data into user
//    data structures (the copy VMMC avoids);
//  * reliable, in-order delivery.
//
// Paper numbers on this hardware: ~11 us latency for an 8-byte packet,
// ~30 MB/s peak ping-pong bandwidth (reconstructed; see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "vmmc/compat/testbed.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::compat {

class FmLcp;

class FmEndpoint {
 public:
  // Handler invoked on extract; receives the reassembled message (already
  // copied into user space).
  using Handler = std::function<void(std::span<const std::uint8_t>)>;

  static constexpr std::uint32_t kFrameBytes = 128;

  FmEndpoint(Testbed& testbed, int node);

  void RegisterHandler(std::uint16_t id, Handler handler);

  // Sends `data` to `dst_node`, invoking handler `id` there. Returns when
  // the last frame has been PIO-copied to the interface.
  sim::Task<Status> Send(int dst_node, std::uint16_t id,
                         std::vector<std::uint8_t> data);

  // Polls the receive ring, runs handlers for complete messages; returns
  // the number of messages handled.
  sim::Task<int> Extract();

  std::uint64_t messages_received() const { return messages_received_; }

 private:
  friend class FmLcp;
  Testbed& testbed_;
  int node_;
  FmLcp* lcp_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint64_t messages_received_ = 0;
};

class FmLcp : public lanai::Lcp {
 public:
  explicit FmLcp(const Params& params) : params_(params) {}

  sim::Process Run(lanai::NicCard& nic) override;

  // Host side: a PIO-written frame (the library charges the PIO cost).
  struct Frame {
    int dst_node;
    std::uint16_t handler;
    std::uint32_t msg_len;   // total message length
    bool last;
    std::vector<std::uint8_t> data;
  };
  void PostFrame(Frame frame);

  // Receive ring in pinned host memory (one slot per frame).
  struct RingSlot {
    std::uint16_t handler;
    std::uint32_t msg_len;
    bool last;
    std::vector<std::uint8_t> data;
  };
  std::deque<RingSlot>& rx_ring() { return rx_ring_; }

 private:
  const Params& params_;
  lanai::NicCard* nic_ = nullptr;
  mem::PhysAddr ring_pa_ = 0;
  std::deque<Frame> tx_queue_;
  std::deque<RingSlot> rx_ring_;
};

}  // namespace vmmc::compat
