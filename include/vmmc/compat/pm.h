// A PM-like layer (§7): user-space messaging from the Real World Computing
// Partnership.
//
// Characteristics modelled from the paper's description:
//  * protection by gang scheduling — the current sender has exclusive
//    access to the network interface (no per-process queue scanning, which
//    is why PM's latency edges out VMMC's);
//  * the user first copies data into preallocated, pinned, physically
//    contiguous send buffers — so transfer units can exceed the page size
//    (8 KB here), unlike any layer that sends from arbitrary user memory;
//    the copy is NOT included in PM's published peak bandwidth;
//  * modified ACK/NACK flow control with a fixed window; NACKed units are
//    retransmitted;
//  * notification by polling.
//
// Paper numbers: 7.2 us latency for an 8-byte message; 118 MB/s peak
// pipelined bandwidth at 8 KB transfer units (copy excluded).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "vmmc/compat/testbed.h"
#include "vmmc/sim/sync.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::compat {

class PmLcp;

class PmEndpoint {
 public:
  static constexpr std::uint32_t kUnitBytes = 8192;
  static constexpr std::uint32_t kWindow = 8;

  PmEndpoint(Testbed& testbed, int node);

  // Sends `data` on the channel to `dst_node`. `include_copy` charges the
  // user-to-send-buffer copy (PM's published peak excludes it; the paper
  // points out real applications pay it).
  sim::Task<Status> Send(int dst_node, std::vector<std::uint8_t> data,
                         bool include_copy = true);

  // Polls for a received message; empty if none complete.
  sim::Task<std::vector<std::uint8_t>> Poll();

  std::uint64_t retransmits() const;

 private:
  Testbed& testbed_;
  int node_;
  PmLcp* lcp_;
  std::uint32_t next_tx_seq_ = 0;
};

class PmLcp : public lanai::Lcp {
 public:
  explicit PmLcp(const Params& params) : params_(params) {}

  sim::Process Run(lanai::NicCard& nic) override;

  struct Unit {
    int dst_node;
    std::uint32_t seq;
    std::uint32_t msg_len;
    bool last;
    std::vector<std::uint8_t> data;
  };
  void PostUnit(Unit unit);

  // Window flow control: the host acquires a credit before posting; ACKs
  // release credits.
  sim::Semaphore* credits() { return credits_.get(); }

  std::deque<std::vector<std::uint8_t>>& delivered() { return delivered_; }
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  sim::Process SendUnit(lanai::NicCard& nic, Unit unit);
  sim::Process TxPump(lanai::NicCard& nic);

  const Params& params_;
  lanai::NicCard* nic_ = nullptr;
  std::deque<Unit> tx_queue_;
  std::unique_ptr<sim::Semaphore> credits_;
  std::unique_ptr<sim::Mailbox<myrinet::Packet>> tx_pump_;
  std::uint32_t next_rx_seq_ = 0;
  std::vector<std::uint8_t> assembling_;
  std::deque<std::vector<std::uint8_t>> delivered_;
  std::deque<Unit> unacked_;
  std::uint64_t retransmits_ = 0;
};

}  // namespace vmmc::compat
