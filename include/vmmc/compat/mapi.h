// A Myrinet API-like layer (§7): Myricom's stock message-passing library.
//
// Characteristics modelled from the paper's description:
//  * multi-channel communication, software message checksums, scatter/
//    gather — but no flow control and no reliable delivery;
//  * heavyweight per-operation library costs and copies on both sides
//    (send: user buffer -> staging; receive: staging -> user buffer),
//    with no DMA pipelining.
//
// Paper numbers on this hardware: 63 us latency for a 4-byte packet,
// ~35 MB/s peak ping-pong bandwidth (reconstructed; see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "vmmc/compat/testbed.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::compat {

class MapiLcp;

class MapiEndpoint {
 public:
  MapiEndpoint(Testbed& testbed, int node);

  // Blocking send on a channel; copies into a staging buffer, checksums,
  // and waits until the interface has taken the data.
  sim::Task<Status> Send(int dst_node, std::uint16_t channel,
                         std::vector<std::uint8_t> data);

  // Blocking-poll receive: returns the next message on `channel` once it
  // has been copied into user space (empty if none pending).
  sim::Task<std::vector<std::uint8_t>> Recv(std::uint16_t channel);

  std::uint64_t checksum_failures() const;

 private:
  Testbed& testbed_;
  int node_;
  MapiLcp* lcp_;
};

class MapiLcp : public lanai::Lcp {
 public:
  explicit MapiLcp(const Params& params) : params_(params) {}

  sim::Process Run(lanai::NicCard& nic) override;

  struct Message {
    int dst_node;
    std::uint16_t channel;
    std::uint32_t checksum;
    std::vector<std::uint8_t> data;
  };
  void PostSend(Message message);

  std::deque<Message>& received(std::uint16_t channel) {
    return rx_[channel];
  }
  std::uint64_t checksum_failures() const { return checksum_failures_; }

 private:
  const Params& params_;
  lanai::NicCard* nic_ = nullptr;
  std::deque<Message> tx_queue_;
  std::unordered_map<std::uint16_t, std::deque<Message>> rx_;
  std::uint64_t checksum_failures_ = 0;
};

}  // namespace vmmc::compat
