// The SHRIMP comparison platform (§6): VMMC's original home. An EISA-bus
// network interface whose *hardware* state machine initiates deliberate-
// update transfers:
//
//  * the destination proxy space is part of the sender's virtual address
//    space; OS-maintained mappings provide protection and translation;
//  * a user process starts a transfer with just two memory-mapped I/O
//    instructions; the NIC state machine verifies permissions, walks the
//    (per-interface) outgoing page table, builds the packet and starts
//    sending in ~2-3 us;
//  * multi-page sends cost two PIO instructions per page (unlike Myrinet,
//    where one request covers up to 8 MB);
//  * the two initiation instructions are not atomic, so the state machine
//    must be invalidated on context switch (modelled as a per-NIC engine
//    lock);
//  * user-to-user bandwidth equals the EISA hardware limit of 23 MB/s;
//    one-word latency is ~7 us.
//
// The implementation reuses the VMMC page-table types — the paper notes
// both systems share the export/import design (and even daemon code).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/sync.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/page_tables.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::compat {

class ShrimpNic;

// A two-node (or N-node) SHRIMP system on its own interconnect.
class ShrimpSystem {
 public:
  ShrimpSystem(sim::Simulator& sim, const Params& params, int num_nodes);
  ~ShrimpSystem();

  sim::Simulator& simulator() { return sim_; }
  const Params& params() const { return params_; }
  host::Machine& machine(int node) { return *machines_.at(static_cast<std::size_t>(node)); }
  ShrimpNic& nic(int node) { return *nics_.at(static_cast<std::size_t>(node)); }
  int num_nodes() const { return static_cast<int>(nics_.size()); }

  myrinet::Route RouteTo(int src, int dst) const;
  Status Inject(int src_node, myrinet::Packet packet);

  // Export registry shared by the per-node "daemons" (§6 notes both
  // platforms run the same daemon code; the Ethernet matching path is
  // exercised by the Myrinet build).
  struct BufferExport {
    int node;
    std::uint32_t len;
    std::vector<mem::Pfn> frames;
  };
  std::unordered_map<std::string, BufferExport>& export_registry() {
    return export_registry_;
  }

 private:
  std::unordered_map<std::string, BufferExport> export_registry_;
  sim::Simulator& sim_;
  Params params_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::vector<std::unique_ptr<host::Machine>> machines_;
  std::vector<std::unique_ptr<ShrimpNic>> nics_;
};

// The SHRIMP network interface with its hardware deliberate-update engine.
class ShrimpNic : public myrinet::Endpoint {
 public:
  ShrimpNic(sim::Simulator& sim, const Params& params, host::Machine& machine,
            ShrimpSystem& system, int node_id);

  int node_id() const { return node_id_; }
  vmmc_core::IncomingPageTable& incoming() { return incoming_; }
  // One outgoing page table per *interface* (§6), maintained by the OS.
  vmmc_core::OutgoingPageTable& outgoing() { return outgoing_; }

  // Hardware deliberate update: called after the user issued the two PIO
  // writes. `pages` source physical pages are streamed in page chunks.
  // Returns when the data has left the host (EISA DMA done).
  sim::Process DeliberateUpdate(std::vector<mem::PhysAddr> src_pages,
                                std::uint32_t len, vmmc_core::ProxyAddr proxy);

  // Automatic update (§6 footnote): the snooping card captured `data`
  // being written to local memory; it packetizes and forwards it. The data
  // never crosses the EISA bus on the send side.
  sim::Process AutomaticUpdate(std::vector<std::uint8_t> data,
                               vmmc_core::ProxyAddr proxy);

  void OnPacket(myrinet::Packet packet, sim::Tick tail_time,
                myrinet::Link* from) override;

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t pages_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t protection_violations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  sim::Process Receive(myrinet::Packet packet);

  sim::Simulator& sim_;
  const Params& params_;
  host::Machine& machine_;
  ShrimpSystem& system_;
  int node_id_;
  vmmc_core::IncomingPageTable incoming_;
  vmmc_core::OutgoingPageTable outgoing_;
  sim::Semaphore engine_;    // the non-atomic two-instruction state machine
  sim::Semaphore eisa_bus_;  // EISA DMA bandwidth bottleneck
  Stats stats_;
};

// VMMC-on-SHRIMP user library: the same export/import/send model, with
// SHRIMP's initiation costs. Buffer matching is a local registry standing
// in for the (shared, §6) daemon code.
class ShrimpEndpoint {
 public:
  ShrimpEndpoint(ShrimpSystem& system, int node, const std::string& name);

  host::UserProcess& process() { return *process_; }
  mem::AddressSpace& memory() { return process_->address_space(); }

  Result<mem::VirtAddr> AllocBuffer(std::uint32_t len);

  // Export/import via the shared registry (setup path, uncosted).
  Result<std::uint32_t> ExportBuffer(mem::VirtAddr va, std::uint32_t len,
                                     const std::string& name);
  Result<vmmc_core::ProxyAddr> ImportBuffer(int remote_node,
                                            const std::string& name);

  // Synchronous deliberate update: returns when the send buffer is
  // reusable. Two PIO writes per page (§6) plus the engine time.
  sim::Task<Status> SendMsg(mem::VirtAddr src, vmmc_core::ProxyAddr dst,
                            std::uint32_t len);

  // --- automatic update (§6 footnote; SHRIMP-only) ---
  // Binds [va, va+len) so that writes to it are snooped off the memory bus
  // and propagated to the corresponding offsets of `proxy`. The OS
  // maintains these mappings (part of SHRIMP's larger OS footprint).
  Status MapAutomaticUpdate(mem::VirtAddr va, std::uint32_t len,
                            vmmc_core::ProxyAddr proxy);
  // An ordinary store to auto-update-mapped memory: updates local memory
  // and the snoop hardware forwards it — no send call, no PIO, no DMA on
  // the sending host.
  sim::Task<Status> AutoWrite(mem::VirtAddr va,
                              std::span<const std::uint8_t> data);

 private:
  struct AutoBinding {
    mem::VirtAddr base;
    std::uint32_t len;
    vmmc_core::ProxyAddr proxy;
  };

  ShrimpSystem& system_;
  int node_;
  host::UserProcess* process_;
  std::vector<AutoBinding> auto_bindings_;
};

}  // namespace vmmc::compat
