// An Active Messages-like layer (§7) built ON TOP of VMMC — demonstrating
// VMMC as a substrate for request/reply protocols: "each communication is
// formed by a request/reply pair. Request messages include the address of
// a handler function at the destination node and a fixed size payload that
// is passed as an argument to the handler."
//
// The implementation maps AM's request/reply slots onto cross-imported
// VMMC receive buffers and uses polling for notification (one of AM's
// documented modes). The paper reports no Myrinet numbers for AM ("Active
// Messages does not yet run on our hardware"); this layer exists for
// completeness and as an example of protocol layering over VMMC.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "vmmc/sim/task.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::compat {

class AmEndpoint {
 public:
  static constexpr std::uint32_t kPayloadWords = 8;  // fixed-size payload
  using Payload = std::array<std::uint32_t, kPayloadWords>;
  // Request handlers compute a reply payload; reply handlers are fire and
  // forget.
  using RequestHandler = std::function<Payload(const Payload&)>;
  using ReplyHandler = std::function<void(const Payload&)>;

  // Builds AM over an already-booted VMMC cluster; call Connect on both
  // sides before issuing requests.
  static Result<std::unique_ptr<AmEndpoint>> Create(vmmc_core::Cluster& cluster,
                                                    int node);

  // Establishes the slot buffers with a peer (export + cross import).
  sim::Task<Status> Connect(AmEndpoint& peer);

  void RegisterRequestHandler(std::uint16_t id, RequestHandler handler);

  // Issues a request and waits (polling) for the reply payload.
  sim::Task<Result<Payload>> Request(int dst_node, std::uint16_t id,
                                     const Payload& args);

  // Serves incoming requests: must be running on any node that registered
  // handlers.
  sim::Process ServeLoop();
  void StopServing() { serving_ = false; }

  std::uint64_t requests_served() const { return requests_served_; }

 private:
  explicit AmEndpoint(vmmc_core::Cluster& cluster, int node,
                      std::unique_ptr<vmmc_core::Endpoint> ep);

  struct SlotView {
    mem::VirtAddr local_va = 0;         // exported slot (we receive here)
    vmmc_core::ProxyAddr remote = 0;    // imported peer slot (we send here)
  };

  vmmc_core::Cluster& cluster_;
  int node_;
  std::unique_ptr<vmmc_core::Endpoint> ep_;
  // Ordered by peer rank: ServeLoop polls these with co_awaits inside the
  // loop, so iteration order is event order (vmmc-lint R2).
  std::map<int, SlotView> request_slots_;
  std::map<int, SlotView> reply_slots_;
  std::unordered_map<std::uint16_t, RequestHandler> handlers_;
  mem::VirtAddr scratch_ = 0;  // send staging in user space
  bool serving_ = true;
  std::uint32_t next_request_seq_ = 1;
  std::uint64_t requests_served_ = 0;
};

}  // namespace vmmc::compat
