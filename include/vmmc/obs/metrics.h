// Simulator-native metrics: named counters, gauges, and histograms owned
// by a Registry (one per Simulator). Components obtain their instruments
// once, at construction or bind time, and hold raw pointers; hot-path
// updates are then a plain add with no lookup, no lock, and no branch on
// an "enabled" flag — metrics are always on and cheap enough to stay on.
//
// Naming scheme (see DESIGN.md): dot-separated, component instance first:
//   node0.lcp.chunks_sent     node1.tlb.miss      node0.dma.host.busy_ns
//   fabric.link3.bytes        fabric.switch0.dropped
// Counters that accumulate simulated time end in `_ns`.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "vmmc/sim/time.h"
#include "vmmc/util/stats.h"

namespace vmmc::obs {

// Monotonically increasing event / byte / tick count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void MergeFrom(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

// Instantaneous level (queue depth, utilization). Tracks min/max and a
// sim-time-weighted mean: each value is weighted by how long it was held,
// so `send_queue_depth` averaged this way is true mean occupancy.
class Gauge {
 public:
  void Set(sim::Tick now, double v);
  void Add(sim::Tick now, double delta) { Set(now, value_ + delta); }

  double value() const { return value_; }
  double min() const { return seen_ ? min_ : 0.0; }
  double max() const { return seen_ ? max_ : 0.0; }
  // Time-weighted mean over [first Set, now]; 0 before any Set.
  double TimeWeightedMean(sim::Tick now) const;

  // Approximate cross-shard fold: levels sum (two shards' queue depths
  // add), extremes take the per-shard extremes (a lower bound on the true
  // combined extreme — concurrent peaks on different shards are not
  // reconstructed), and the time-weighted integral sums over the union of
  // both observation windows.
  void MergeFrom(const Gauge& other);

 private:
  double value_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double weighted_sum_ = 0.0;  // integral of value over sim time
  sim::Tick first_ = 0;
  sim::Tick last_ = 0;
  bool seen_ = false;
};

// Sample distribution with power-of-two buckets (values are typically
// durations in ticks). Fixed bucket layout keeps updates O(1) and dumps
// deterministic.
class Histo {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Observe(double v);

  std::uint64_t count() const { return stats_.count(); }
  double sum() const { return sum_; }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  // Estimated quantile from the log2 buckets (exact for count 0/1).
  double Quantile(double q) const;

  // Exact fold: the fixed bucket layout makes the merged histogram
  // identical to one that Observed every sample of both.
  void MergeFrom(const Histo& other);

 private:
  OnlineStats stats_;
  double sum_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

// The per-simulator instrument store. Get* registers on first use and
// returns the same instrument for the same name thereafter, so any layer
// can aggregate into a shared counter without coordination. Iteration is
// in name order (std::map), which keeps every dump deterministic.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histo& GetHisto(const std::string& name);

  // Read-side helpers for benches: value of a named instrument, 0 / null
  // semantics if it was never registered.
  std::uint64_t CounterValue(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histo* FindHisto(const std::string& name) const;

  // Sum of all counters whose name matches `prefix` + anything + `suffix`
  // (suffix may be empty). Lets benches aggregate e.g. every
  // "fabric.link*.ser_ns" without enumerating links.
  std::uint64_t SumCounters(std::string_view prefix,
                            std::string_view suffix = "") const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histos_.size();
  }

  // Folds every instrument of `other` into this registry, creating
  // instruments that don't exist here yet. Counters and histograms merge
  // exactly; gauges approximately (see Gauge::MergeFrom). Used by the
  // parallel engine to combine per-shard registries into one dump
  // (ParallelEngine::MergeMetricsInto) — shard-unique names (node3.*)
  // simply coexist, shared names (fabric totals) aggregate.
  void MergeFrom(const Registry& other);

  // Snapshot as a JSON object (deterministic: sorted names, fixed float
  // formatting) or as a stats.h table for terminal output.
  std::string ToJson(sim::Tick now) const;
  Table ToTable(sim::Tick now) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histo>> histos_;
};

}  // namespace vmmc::obs
