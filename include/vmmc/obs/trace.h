// Span tracer: begin/end events stamped with Simulator::now(), exported
// as Chrome trace-event JSON (load in chrome://tracing or Perfetto).
//
// Tracks model execution contexts (one per LCP, DMA engine, driver...);
// they map to Chrome "threads". Within one track, B/E events must nest —
// which they naturally do when all spans on the track come from one
// coroutine stack. For work that overlaps on a track (e.g. concurrent RPC
// round trips) use the async API (AsyncBegin/AsyncEnd with an id), whose
// events are allowed to interleave.
//
// Recording is off by default; when disabled every call is a single
// predictable branch. All timestamps are simulated time, so traces are
// byte-identical across runs of the same workload.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vmmc/sim/time.h"
#include "vmmc/util/status.h"

namespace vmmc::obs {

class Tracer {
 public:
  // `now` points at the owning Simulator's clock; the tracer reads it at
  // every event so callers never pass timestamps.
  explicit Tracer(const sim::Tick* now) : now_(now) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Returns a dense track id (Chrome tid). Registering the same name
  // twice returns the same id; ids follow registration order, which is
  // deterministic for a deterministic program.
  int RegisterTrack(const std::string& name);

  // Scoped (synchronous) spans: must nest per track.
  void Begin(int track, std::string_view name);
  void End(int track);
  // Zero-duration marker.
  void Instant(int track, std::string_view name);

  // Async spans: may overlap on a track; matched by (name, id). Explicit
  // begin/end is coroutine-friendly — a span can start before a co_await
  // and end in a different resume without any object held across.
  void AsyncBegin(int track, std::string_view name, std::uint64_t id);
  void AsyncEnd(int track, std::string_view name, std::uint64_t id);

  std::size_t event_count() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // RAII helper for synchronous spans. Inert when default-constructed or
  // when tracing was disabled at Scope() time; safe to hold across
  // co_await (it lives in the coroutine frame, and End() stamps the sim
  // time at which the frame actually finishes the scope).
  class [[nodiscard]] Span {
   public:
    Span() = default;
    Span(Tracer* tracer, int track) : tracer_(tracer), track_(track) {}
    Span(Span&& o) noexcept : tracer_(o.tracer_), track_(o.track_) {
      o.tracer_ = nullptr;
    }
    Span& operator=(Span&& o) noexcept {
      if (this != &o) {
        End();
        tracer_ = o.tracer_;
        track_ = o.track_;
        o.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    void End() {
      if (tracer_ != nullptr) {
        tracer_->End(track_);
        tracer_ = nullptr;
      }
    }

   private:
    Tracer* tracer_ = nullptr;
    int track_ = 0;
  };

  // Begins a span and returns its closer; inert if disabled.
  Span Scope(int track, std::string_view name) {
    if (!enabled_) return Span();
    Begin(track, name);
    return Span(this, track);
  }

  // Chrome trace-event JSON: {"displayTimeUnit":"ns","traceEvents":[...]}.
  // Timestamps are microseconds with nanosecond precision.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct TraceEvent {
    sim::Tick ts;
    std::int32_t track;
    char phase;        // 'B','E','i','b','e'
    std::uint64_t id;  // async spans only
    std::string name;
  };

  void Record(char phase, int track, std::string_view name,
              std::uint64_t id = 0);

  const sim::Tick* now_;
  bool enabled_ = false;
  std::vector<std::string> tracks_;
  std::vector<TraceEvent> events_;
};

// Wires the VMMC_TRACE environment variable to a Tracer: if VMMC_TRACE
// names a file, tracing is enabled at construction and the Chrome-trace
// JSON is written there at destruction. Usage in a main():
//   obs::TraceEnvGuard trace(sim.tracer());
class TraceEnvGuard {
 public:
  explicit TraceEnvGuard(Tracer& tracer);
  ~TraceEnvGuard();
  TraceEnvGuard(const TraceEnvGuard&) = delete;
  TraceEnvGuard& operator=(const TraceEnvGuard&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  Tracer& tracer_;
  std::string path_;
};

}  // namespace vmmc::obs
