// MPI-style collective operations over VMMC — the kind of message-passing
// layer the paper positions VMMC as a substrate for (§1: "a key enabling
// technology ... is a high-performance communication mechanism that
// supports protected, user-level message passing").
//
// A Communicator gives one rank (one process, one node) point-to-point
// links to every peer, each built from a pair of exported slot buffers
// with credit-based flow control — the receiver-managed buffer management
// VMMC makes possible (§2). On top of the links:
//
//   Barrier()            dissemination barrier, ceil(log2 N) rounds
//   Broadcast(root,...)  binomial tree
//   AllReduceSum(...)    ring reduce-scatter + all-gather
//   Gather(root,...)     direct sends to the root
//   SendTo/RecvFrom      the raw point-to-point layer
//
// All operations are coroutines; every rank of the communicator must call
// the same collective in the same order (MPI semantics).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vmmc/sim/process.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::coll {

struct CommOptions {
  // false: Create() builds all N-1 point-to-point links up front (N^2
  // exported buffers across the job — fine at paper scale). true: a
  // link materializes on first SendTo/RecvFrom touching that peer, so a
  // ring allreduce on 64 nodes sets up 2 links per rank instead of 63.
  // Both sides of a lazy link converge because the import handshake
  // waits for the peer's export.
  bool lazy_links = false;
};

class Communicator {
 public:
  using Options = CommOptions;

  // One call per rank; ranks are node ids. `tag` isolates independent
  // communicators in the daemon's export namespace.
  static sim::Task<Result<std::unique_ptr<Communicator>>> Create(
      vmmc_core::Cluster& cluster, int rank, int size,
      std::string tag = "world", Options options = {});

  int rank() const { return rank_; }
  int size() const { return size_; }
  vmmc_core::Endpoint& endpoint() { return *ep_; }

  // --- point to point (message-passing semantics over the links) ---
  // Blocks until the peer consumed the previous message on this link.
  sim::Task<Status> SendTo(int peer, std::span<const std::uint8_t> data);
  // Blocks until the next message from `peer` arrives; returns its bytes.
  sim::Task<Result<std::vector<std::uint8_t>>> RecvFrom(int peer);

  // --- collectives ---
  sim::Task<Status> Barrier();
  // Root's `data` is distributed to everyone (in place on non-roots).
  sim::Task<Status> Broadcast(int root, std::vector<std::uint8_t>& data);
  // Element-wise sum across ranks, result everywhere. Uses the ring
  // algorithm when values.size() is divisible by size(), otherwise a
  // gather+broadcast fallback.
  sim::Task<Status> AllReduceSum(std::vector<std::int64_t>& values);
  // Everyone's data concatenated (rank order) at the root.
  sim::Task<Status> Gather(int root, std::span<const std::uint8_t> mine,
                           std::vector<std::uint8_t>* all);

  // Number of collective operations completed (diagnostics).
  std::uint64_t operations() const { return operations_; }
  // Point-to-point links established so far (== size-1 when eager; grows
  // on demand when lazy).
  int links_established() const { return static_cast<int>(links_.size()); }

  static constexpr std::uint32_t kMaxMessage = 64 * 1024;

 private:
  Communicator(vmmc_core::Cluster& cluster, int rank, int size, std::string tag)
      : cluster_(cluster), rank_(rank), size_(size), tag_(std::move(tag)) {}

  // One direction of a point-to-point link.
  struct Link {
    // Receive side (exported by us).
    mem::VirtAddr recv_slot = 0;   // [payload][len][seq]
    mem::VirtAddr ack_out = 0;     // staging for our consumption acks
    std::uint32_t next_recv_seq = 1;
    // Send side (imported from the peer).
    vmmc_core::ProxyAddr send_slot = 0;
    vmmc_core::ProxyAddr peer_ack = 0;  // peer's ack word for our sends
    mem::VirtAddr send_staging = 0;
    mem::VirtAddr ack_word = 0;  // exported; peer acks land here
    std::uint32_t next_send_seq = 1;
  };

  sim::Task<Status> SetupLink(int peer);
  // Validates `peer` and, under Options::lazy_links, builds the link on
  // first use.
  sim::Task<Status> EnsureLink(int peer);
  // Materializes the links to `a` and `b` concurrently. Needed before a
  // cyclic exchange (ring step, barrier round) under lazy_links: each
  // side's import handshake waits for the peer's export, so two setups
  // that form a cycle across ranks deadlock when run sequentially.
  sim::Task<Status> EnsureLinks(int a, int b);
  static sim::Process EnsureOne(Communicator* self, int peer, int* pending,
                                Status* first_error);
  std::uint32_t ReadWord(mem::VirtAddr va) const;

  vmmc_core::Cluster& cluster_;
  int rank_;
  int size_;
  std::string tag_;
  Options options_;
  std::unique_ptr<vmmc_core::Endpoint> ep_;
  std::map<int, Link> links_;
  std::uint64_t operations_ = 0;
};

}  // namespace vmmc::coll
