// MPI-style collective operations over VMMC — the kind of message-passing
// layer the paper positions VMMC as a substrate for (§1: "a key enabling
// technology ... is a high-performance communication mechanism that
// supports protected, user-level message passing").
//
// A Communicator gives one rank (one process, one node) a P2pChannel to
// every peer it talks to. The channel picks the wire protocol per message
// (eager copy-through below the crossover, zero-copy reader-pull
// rendezvous above it — see vmmc/p2p.h); the communicator picks the
// collective algorithm per vector size:
//
//   Barrier()            dissemination barrier, ceil(log2 N) rounds
//   Broadcast(root,...)  binomial tree
//   AllReduceSum(...)    selected by payload size (SelectAllReduce):
//                          - one rank: nothing to do;
//                          - vectors that fit one eager message are
//                            latency-bound: recursive doubling when the
//                            world is a power of two, binomial-tree
//                            reduce + broadcast otherwise;
//                          - larger divisible vectors are bandwidth-
//                            bound: ring reduce-scatter + all-gather;
//                          - larger indivisible vectors: gather at rank
//                            0, reduce, broadcast.
//   Gather(root,...)     direct sends to the root
//   SendTo/RecvFrom      the raw point-to-point layer
//
// All operations are coroutines; every rank of the communicator must call
// the same collective in the same order (MPI semantics).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vmmc/sim/process.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/cluster.h"
#include "vmmc/vmmc/p2p.h"

namespace vmmc::coll {

struct CommOptions {
  // false: Create() builds all N-1 point-to-point channels up front (N^2
  // exported buffers across the job — fine at paper scale). true: a
  // channel materializes on first SendTo/RecvFrom touching that peer, so
  // a ring allreduce on 64 nodes sets up 2 channels per rank instead of
  // 63. Both sides of a lazy channel converge because the import
  // handshake waits for the peer's export.
  bool lazy_links = false;
};

class Communicator {
 public:
  using Options = CommOptions;

  // Which algorithm AllReduceSum will run for an n-element vector.
  enum class AllReduceAlgo {
    kSingle,             // size() == 1: no communication
    kRecursiveDoubling,  // small vector, power-of-two world
    kBinomialTree,       // small vector, any world size
    kRing,               // large vector divisible by size()
    kGatherBroadcast,    // large indivisible vector
  };

  // One call per rank; ranks are node ids. `tag` isolates independent
  // communicators in the daemon's export namespace.
  static sim::Task<Result<std::unique_ptr<Communicator>>> Create(
      vmmc_core::Cluster& cluster, int rank, int size,
      std::string tag = "world", Options options = {});

  int rank() const { return rank_; }
  int size() const { return size_; }
  vmmc_core::Endpoint& endpoint() { return *ep_; }

  // --- point to point (message-passing semantics over the channels) ---
  // Blocks until the peer consumed the previous message on this channel;
  // the channel then stages `data`, so the caller's bytes are free to
  // change as soon as this returns (eager and rendezvous alike).
  sim::Task<Status> SendTo(int peer, std::span<const std::uint8_t> data);
  // Blocks until the next message from `peer` arrives; returns its bytes.
  sim::Task<Result<std::vector<std::uint8_t>>> RecvFrom(int peer);

  // --- collectives ---
  sim::Task<Status> Barrier();
  // Root's `data` is distributed to everyone (in place on non-roots).
  sim::Task<Status> Broadcast(int root, std::vector<std::uint8_t>& data);
  // Element-wise sum across ranks, result everywhere; the algorithm is
  // chosen by SelectAllReduce.
  sim::Task<Status> AllReduceSum(std::vector<std::int64_t>& values);
  // Everyone's data concatenated (rank order) at the root.
  sim::Task<Status> Gather(int root, std::span<const std::uint8_t> mine,
                           std::vector<std::uint8_t>* all);

  // The algorithm AllReduceSum would pick for an n-element int64 vector.
  // "Small" is one eager message (P2pParams::eager_max): such vectors are
  // latency-bound, so log-round algorithms win; larger vectors are
  // bandwidth-bound, so the ring's n/size-sized transfers win.
  AllReduceAlgo SelectAllReduce(std::size_t n) const;

  // Number of collective operations completed (diagnostics).
  std::uint64_t operations() const { return operations_; }
  // Point-to-point channels established so far (== size-1 when eager;
  // grows on demand when lazy).
  int links_established() const { return static_cast<int>(channels_.size()); }
  // Channel protocol counters summed over all peers (diagnostics; shows
  // which wire protocol a collective actually used).
  vmmc_core::P2pChannel::Stats p2p_stats() const;

  static constexpr std::uint32_t kMaxMessage = 64 * 1024;

 private:
  Communicator(vmmc_core::Cluster& cluster, int rank, int size, std::string tag)
      : cluster_(cluster), rank_(rank), size_(size), tag_(std::move(tag)) {}

  sim::Task<Status> SetupLink(int peer);
  // Validates `peer` and, under Options::lazy_links, builds the channel
  // on first use.
  sim::Task<Status> EnsureLink(int peer);
  // Materializes the channels to `a` and `b` concurrently. Needed before
  // a cyclic exchange (ring step, barrier round) under lazy_links: each
  // side's import handshake waits for the peer's export, so two setups
  // that form a cycle across ranks deadlock when run sequentially.
  sim::Task<Status> EnsureLinks(int a, int b);
  static sim::Process EnsureOne(Communicator* self, int peer, int* pending,
                                Status* first_error);

  // AllReduceSum bodies, one per algorithm.
  sim::Task<Status> AllReduceRecursiveDoubling(std::vector<std::int64_t>& values);
  sim::Task<Status> AllReduceBinomial(std::vector<std::int64_t>& values);
  sim::Task<Status> AllReduceRing(std::vector<std::int64_t>& values);
  sim::Task<Status> AllReduceGatherBroadcast(std::vector<std::int64_t>& values);

  vmmc_core::Cluster& cluster_;
  int rank_;
  int size_;
  std::string tag_;
  Options options_;
  std::unique_ptr<vmmc_core::Endpoint> ep_;
  std::map<int, std::unique_ptr<vmmc_core::P2pChannel>> channels_;
  std::uint64_t operations_ = 0;
};

}  // namespace vmmc::coll
